// QueryScheduler: admits and multiplexes N concurrent queries over the
// shared ThreadPool (DESIGN.md §10).
//
// Each submitted query gets a process-unique id (its *task tag*) and runs
// as one fire-and-forget pool task; every morsel the query fans out carries
// that tag, so the pool's round-robin tag dispatch interleaves concurrent
// queries fairly instead of letting one large query's backlog starve the
// rest. Admission control bounds how many queries execute at once
// (max_in_flight); queries past the bound wait in a FIFO backlog and
// launch as slots free up.
//
// Concurrency model (after the morsel-driven-parallelism template): no
// thread is ever created per query. Queries are pool tasks; a waiter
// (Take/WaitAny) that would otherwise block lends its thread to the pool
// via TryRunOneTask, so even a 1-lane pool (PREF_THREADS=1, zero workers)
// drives submitted queries to completion on the waiting thread — serially,
// with bit-identical results.
//
// Per-query isolation:
//  * results/stats — each query runs its own Executor; morsel counters
//    accumulate in its ExecStats and fold into the metrics registry once
//    at query end, so concurrent runs never interleave counts.
//  * traces — spans inherit the query's tag and are stamped with a "qid"
//    arg (see task_context.h).
//  * cancellation — Cancel(id) stops a queued query immediately and an
//    executing one at its next operator boundary; SubmitOptions::
//    timeout_seconds arms a per-query deadline the same way. Both surface
//    as Status::Cancelled through Take.
//
// Multi-version serving: a scheduler built over a ServingDatabase (the
// online-migration handle, partition/deployment.h) pins a snapshot of the
// current version at each query's *execution start* and runs the whole
// query against it. The snapshot's shared ownership keeps that version's
// storage alive even after a migration publishes a newer one, so queries
// never observe a half-migrated database; the version number lands in
// QueryProfile::database_version. A scheduler built over a plain
// PartitionedDatabase behaves exactly as before (version 0).
//
// Thread safety: all public methods are thread-safe. The scheduler must
// outlive its in-flight queries — the destructor drains (runs or cancels
// nothing; it waits for every submitted query to finish).

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"  // full type: mu_'s lock-order annotation
                                 // names pool_->pool_mu()
#include "engine/executor.h"
#include "engine/profile.h"

namespace pref {

struct ScheduleOptions {
  /// Queries executing concurrently at most; 0 means the pool's lane count
  /// (num_threads()). Submissions beyond the bound queue FIFO.
  int max_in_flight = 0;
  /// Pool to execute on; null means ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

/// Per-submission knobs (the per-query slice of ExecuteQuery's options).
struct SubmitOptions {
  QueryOptions query;
  CostModel cost_model;
  /// > 0 arms a deadline: the query is cancelled (Status::Cancelled from
  /// Take) once it has executed this long. 0 = no deadline.
  double timeout_seconds = 0;
};

class ServingDatabase;

class QueryScheduler {
 public:
  /// Serves a fixed database: every query runs against `pdb`, which must
  /// stay valid (and unmodified) for the scheduler's lifetime.
  explicit QueryScheduler(const PartitionedDatabase& pdb,
                          ScheduleOptions options = {});
  /// Serves a live ServingDatabase: each query pins the version current at
  /// its execution start (see the header comment). `serving` must outlive
  /// the scheduler; versions it publishes stay alive until the last query
  /// pinning them completes.
  explicit QueryScheduler(ServingDatabase* serving,
                          ScheduleOptions options = {});
  /// Blocks until every submitted query completed (results of queries
  /// never Take()n are discarded).
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Enqueues `query` for execution and returns its id (> 0). The spec is
  /// copied; the scheduler's database reference must stay valid. Starts
  /// immediately when an in-flight slot is free, else joins the backlog.
  uint64_t Submit(const QuerySpec& query, SubmitOptions options = {});

  /// Blocks until query `id` completes and returns its result (errors and
  /// cancellations come back as the Status). Each id can be taken once;
  /// taking an unknown or already-taken id returns KeyError. While
  /// waiting, the calling thread executes pool tasks (it never idles a
  /// lane). When `profile` is non-null it receives the query's
  /// QueryProfile (stats + scheduler timings; stats are empty when the
  /// query failed or was cancelled).
  Result<QueryResult> Take(uint64_t id, QueryProfile* profile = nullptr);

  /// Blocks until any not-yet-taken query completes and returns its id
  /// (oldest completion first); 0 when nothing is pending. Pair with
  /// Take(id) to consume the result.
  uint64_t WaitAny();

  /// Nonblocking WaitAny: the oldest completed, not-yet-claimed query id,
  /// or 0 when none is ready right now (open-loop drivers poll this
  /// between arrivals).
  uint64_t PollCompleted();

  /// Requests cancellation of query `id`: a queued query completes
  /// immediately as cancelled; an executing one stops at its next operator
  /// boundary. No-op for unknown/finished ids.
  void Cancel(uint64_t id);

  /// Queries currently executing (admitted, not yet finished).
  int InFlight() const;
  /// Submitted queries waiting for an in-flight slot.
  int Backlog() const;

 private:
  enum class State { kQueued, kRunning, kDone, kTaken };

  struct Entry {
    QuerySpec spec;
    SubmitOptions options;
    QueryControl control;
    State state = State::kQueued;
    /// Valid once state >= kDone.
    Result<QueryResult> result;
    /// Started at Submit; read once in LaunchLocked (admission wait) and
    /// restarted there to measure launch→execution queue wait. The Post
    /// that hands the entry to RunQuery orders these writes before the
    /// task's reads.
    Stopwatch wait_watch;
    double admission_wait_seconds = 0;
    /// Assembled by RunQuery; valid once state >= kDone.
    QueryProfile profile;

    Entry(QuerySpec s, SubmitOptions o)
        : spec(std::move(s)), options(std::move(o)),
          result(Status::Internal("query not finished")) {}
  };

  /// Shared ctor tail: binds the pool and registers the metrics family.
  void Init(ScheduleOptions options);
  /// Launches queued queries while in-flight slots are free.
  void LaunchLocked() REQUIRES(mu_);
  /// Runs one query on the pool (entered as a tagged pool task).
  void RunQuery(uint64_t id, Entry* entry);

  /// Exactly one of the two is set: pdb_ for the fixed-database ctor,
  /// serving_ for the live one (queries then pin per-execution snapshots).
  const PartitionedDatabase* pdb_ = nullptr;
  ServingDatabase* serving_ = nullptr;
  ThreadPool* pool_;
  int max_in_flight_;

  /// Held while admitting/finishing queries, during which the scheduler
  /// posts tasks (ThreadPool::mu_) — hence ordered before the pool mutex
  /// in the global hierarchy (common/mutex.h).
  mutable Mutex mu_ ACQUIRED_BEFORE(pool_->pool_mu());
  CondVar cv_;
  /// All submissions by id; entries are stable (unique_ptr) so RunQuery
  /// can touch its entry without holding mu_ while the map grows.
  std::map<uint64_t, std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
  /// Submission order waiting for a slot (front launches next).
  std::deque<uint64_t> backlog_ GUARDED_BY(mu_);
  /// Completion order not yet returned by WaitAny.
  std::deque<uint64_t> completed_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  int in_flight_ GUARDED_BY(mu_) = 0;

  // Observability (DESIGN.md §6).
  Counter* submitted_ = nullptr;        // scheduler.submitted
  Counter* completed_ctr_ = nullptr;    // scheduler.completed
  Counter* cancelled_ = nullptr;        // scheduler.cancelled
  Gauge* in_flight_hwm_ = nullptr;      // scheduler.in_flight (high-water)
  Gauge* backlog_gauge_ = nullptr;      // scheduler.backlog (current depth)
  Histogram* query_seconds_ = nullptr;  // scheduler.query_seconds
  Histogram* queue_wait_ = nullptr;     // scheduler.queue_wait_seconds
};

}  // namespace pref
