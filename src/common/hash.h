// Hashing used for hash partitioning, hash joins and the partition index.

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace pref {

/// 64-bit finalizer (MurmurHash3 fmix64). Good avalanche for integer keys,
/// which dominate partitioning attributes in the TPC schemas.
inline uint64_t HashInt64(int64_t v) {
  uint64_t k = static_cast<uint64_t>(v);
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Word-at-a-time string hash (MurmurHash64A). Processes 8 bytes per
/// multiply instead of the one byte per multiply of FNV-1a, which matters
/// for the comment/name columns in the TPC schemas. Loads go through
/// memcpy so the tail never reads past the buffer (ASan-clean); the byte
/// order of the loads makes the value platform-endian, which is fine — all
/// hashes are recomputed per run and never persisted.
inline uint64_t HashBytes(std::string_view s) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  size_t n = s.size();
  uint64_t h = 0xcbf29ce484222325ULL ^ (static_cast<uint64_t>(n) * kMul);
  for (; n >= 8; p += 8, n -= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  switch (n) {
    case 7: h ^= static_cast<uint64_t>(p[6]) << 48; [[fallthrough]];
    case 6: h ^= static_cast<uint64_t>(p[5]) << 40; [[fallthrough]];
    case 5: h ^= static_cast<uint64_t>(p[4]) << 32; [[fallthrough]];
    case 4: h ^= static_cast<uint64_t>(p[3]) << 24; [[fallthrough]];
    case 3: h ^= static_cast<uint64_t>(p[2]) << 16; [[fallthrough]];
    case 2: h ^= static_cast<uint64_t>(p[1]) << 8; [[fallthrough]];
    case 1:
      h ^= static_cast<uint64_t>(p[0]);
      h *= kMul;
      break;
    default: break;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace pref
