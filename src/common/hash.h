// Hashing used for hash partitioning, hash joins and the partition index.

#pragma once

#include <cstdint>
#include <string_view>

namespace pref {

/// 64-bit finalizer (MurmurHash3 fmix64). Good avalanche for integer keys,
/// which dominate partitioning attributes in the TPC schemas.
inline uint64_t HashInt64(int64_t v) {
  uint64_t k = static_cast<uint64_t>(v);
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a for strings.
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace pref
