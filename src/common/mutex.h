// Annotated mutex wrappers: the capability types Clang's thread-safety
// analysis reasons about.
//
// std::mutex itself carries no capability attributes under libstdc++, so
// GUARDED_BY(some_std_mutex) is invisible to the analysis. These thin
// wrappers — same codegen, zero added state — attach the attributes:
//
//   Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);
//   ...
//   MutexLock lock(&mu_);   // scoped acquire, analysis tracks it
//   queue_.push_back(t);    // OK: mu_ held
//
// CondVar pairs with MutexLock for condition waits. Wait() releases and
// reacquires the underlying mutex, but from the analysis's point of view
// the capability is held across the call (the Abseil convention): guarded
// reads in the wait predicate are exactly the pattern this models.
//
// Global lock order. Every long-lived Mutex in the library sits in one
// acyclic hierarchy, declared at the member with ACQUIRED_BEFORE /
// ACQUIRED_AFTER (checked by Clang under -Wthread-safety-beta; always
// documentation). A thread holding a mutex may only acquire mutexes to the
// right of it:
//
//   QueryScheduler::mu_  ─┐
//   MigrationExecutor::mu_┴─► ThreadPool::mu_ ─► ForkJoin::mu
//                                Tracer::mu_  ─► Tracer::ThreadBuffer::mu
//                                MetricsRegistry::mu_   (leaf)
//                                ServingDatabase::mu_   (leaf;
//                                  MigrationExecutor::mu_ orders before it)
//
// Leaf mutexes guard registration/publication maps and are never held
// across a call into another subsystem. Cross-class edges use the
// "private mutex" accessor pattern (a RETURN_CAPABILITY getter like
// ThreadPool::pool_mu()) so the ordering can be declared without making
// the mutex itself public.

#pragma once

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace pref {

class CondVar;

/// Exclusive capability over whatever state is GUARDED_BY it. Prefer the
/// scoped MutexLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this thread holds the mutex (for code paths where
  /// the acquisition happened out of the analysis's sight). A no-op at
  /// runtime; the claim is audited by TSan in the sanitizer CI jobs.
  void AssertHeld() const TS_ASSERT_HELD() {}

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock: acquires in the constructor, releases in the destructor.
/// SCOPED_CAPABILITY makes the analysis treat the object's lifetime as the
/// span over which the mutex is held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() RELEASE() {}  // unique_lock member unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable operating on MutexLock-held Mutexes.
class CondVar {
 public:
  /// Atomically releases the lock, blocks, and reacquires before
  /// returning. Callers loop on their guarded predicate as with any
  /// condition variable.
  void Wait(MutexLock* lock) { cv_.wait(lock->lock_); }

  /// Waits until `pred()` holds; `pred` runs with the mutex held.
  template <typename Pred>
  void Wait(MutexLock* lock, Pred pred) {
    cv_.wait(lock->lock_, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pref
