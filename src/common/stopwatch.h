// Wall-clock stopwatch for reporting design-algorithm and loading runtimes,
// plus an RAII ScopedTimer that reports the measured interval into a
// double accumulator and/or a metrics Histogram on destruction.

#pragma once

#include <chrono>

#include "common/metrics.h"

namespace pref {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Measures construction-to-destruction and reports the elapsed seconds by
/// *adding* to `sink` (so one accumulator can span several timed scopes)
/// and/or observing into `hist`. Either target may be null.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink, Histogram* hist = nullptr)
      : sink_(sink), hist_(hist) {}
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    double seconds = watch_.ElapsedSeconds();
    if (sink_ != nullptr) *sink_ += seconds;
    if (hist_ != nullptr) hist_->Observe(seconds);
  }

 private:
  Stopwatch watch_;
  double* sink_ = nullptr;
  Histogram* hist_ = nullptr;
};

}  // namespace pref
