// Clang thread-safety-analysis attribute macros (Abseil idiom).
//
// Annotating shared state with GUARDED_BY / REQUIRES turns our locking
// discipline into something `clang -Wthread-safety` checks on every
// compile: touching an annotated field without holding its mutex, or
// calling a REQUIRES function off-lock, is a build error in the Clang CI
// job (-Werror=thread-safety). Under GCC and MSVC every macro expands to
// nothing, so annotations cost nothing outside Clang builds.
//
// Vocabulary (see DESIGN.md §9 for the how-to-annotate recipe):
//  * GUARDED_BY(mu)    — field may only be read or written while `mu` is
//    held. The workhorse annotation; put it on every mutex-protected field.
//  * PT_GUARDED_BY(mu) — the *pointee* is guarded; the pointer itself may
//    be read freely.
//  * REQUIRES(mu)      — function may only be called with `mu` held (and
//    does not release it). Use on private helpers called under a lock.
//  * EXCLUDES(mu)      — function must NOT be called with `mu` held; use
//    on public entry points that take the lock themselves, to catch
//    self-deadlock.
//  * ACQUIRE/RELEASE   — function acquires/releases the capability
//    (Mutex::Lock / Mutex::Unlock and scoped-lock constructors).
//  * TS_ASSERT_HELD    — runtime assertion the analysis trusts: marks a
//    function that dies unless the capability is held (Mutex::AssertHeld).
//  * NO_THREAD_SAFETY_ANALYSIS — escape hatch for a function whose locking
//    is correct but inexpressible; always pair with a comment saying why.
//
// The macro names are unprefixed on purpose (matching Abseil/Arrow usage
// in this codebase's lineage); nothing else in the tree defines them.

#pragma once

#if defined(__clang__)
#define PREF_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PREF_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) PREF_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY PREF_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) PREF_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) PREF_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) PREF_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define RETURN_CAPABILITY(x) PREF_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define TS_ASSERT_HELD(...) \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(__VA_ARGS__))

#define NO_THREAD_SAFETY_ANALYSIS \
  PREF_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
