// Compact bitmaps backing the PREF auxiliary indexes (dup / hasS, §2.1).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pref {

/// \brief Growable bitset with word-level popcount.
///
/// The PREF partitioner attaches one `dup` bitmap and one `hasS` bitmap to
/// every partition of a PREF-partitioned table (Figure 2 of the paper). The
/// query engine consumes them during duplicate elimination and semi-/anti-
/// join rewrites, so Count()/CountZeros() must be cheap.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t n, bool value = false) { Resize(n, value); }

  void Resize(size_t n, bool value = false) {
    n_ = n;
    words_.assign((n + 63) / 64, value ? ~uint64_t{0} : 0);
    TrimTail();
  }

  void PushBack(bool value) {
    if (n_ % 64 == 0) words_.push_back(0);
    if (value) words_[n_ / 64] |= uint64_t{1} << (n_ % 64);
    ++n_;
  }

  void Set(size_t i, bool value = true) {
    if (value) {
      words_[i / 64] |= uint64_t{1} << (i % 64);
    } else {
      words_[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
  }

  bool Get(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Number of clear bits.
  size_t CountZeros() const { return n_ - Count(); }

  bool operator==(const Bitmap& other) const {
    return n_ == other.n_ && words_ == other.words_;
  }

 private:
  void TrimTail() {
    if (n_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (n_ % 64)) - 1;
    }
  }

  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pref
