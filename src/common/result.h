// Result<T>: a value or an error Status (Arrow idiom).

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace pref {

/// \brief Holds either a value of type T or an error Status.
///
/// [[nodiscard]] like Status: ignoring a Result drops both the value and
/// the error, so the compiler flags it (-Werror in CI).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Error status; OK() if this holds a value.
  Status status() const& {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }
  Status status() && {
    if (ok()) return Status::OK();
    return std::move(std::get<Status>(repr_));
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace pref
