// Parallel-for over partitions, backed by the process-wide bounded
// ThreadPool (common/thread_pool.h). Safe wherever iterations touch
// disjoint state (the executor's per-partition operators write to
// per-partition outputs and per-node counters only).
//
// Historically this header spawned one std::thread per iteration, which
// oversubscribed the machine whenever the iteration count exceeded the
// core count. The signature is unchanged; scheduling now goes through the
// shared fixed-size pool with chunked static scheduling.

#pragma once

#include <functional>

#include "common/thread_pool.h"

namespace pref {

/// Runs fn(0) .. fn(n-1) on the default ThreadPool: in parallel when the
/// pool has more than one lane and n > 1; serially otherwise. Concurrency
/// is bounded by ThreadPool::DefaultConcurrency() regardless of n.
/// Exceptions thrown by `fn` are rethrown on the calling thread.
inline void ParallelFor(int n, const std::function<void(int)>& fn) {
  ThreadPool::Default().ParallelFor(n, fn);
}

}  // namespace pref
