// Minimal parallel-for over partitions: each simulated node's work runs on
// its own thread. Safe wherever iterations touch disjoint state (the
// executor's per-partition operators write to per-partition outputs and
// per-node counters only).

#pragma once

#include <functional>
#include <thread>
#include <vector>

namespace pref {

/// Runs fn(0) .. fn(n-1), in parallel when the hardware has spare cores and
/// n > 1; serially otherwise. Exceptions must not escape `fn`.
inline void ParallelFor(int n, const std::function<void(int)>& fn) {
  unsigned hw = std::thread::hardware_concurrency();
  if (n <= 1 || hw <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) threads.emplace_back(fn, i);
  for (auto& t : threads) t.join();
}

}  // namespace pref
