// Bounded worker pool: the process-wide concurrency substrate.
//
// The pool owns a fixed set of worker threads (sized to the hardware, never
// one thread per work item) and schedules parallel-for style workloads over
// them with chunked static scheduling. It replaces the old spawn-per-
// iteration ParallelFor, which oversubscribed the machine as soon as the
// iteration count exceeded the core count.
//
// Design notes:
//  * Workers are started once and reused across calls; a ParallelFor call
//    costs two mutex handshakes per chunk, not a thread spawn.
//  * [0, n) is split into at most num_threads() + 1 contiguous chunks; the
//    calling thread executes one chunk itself, so a pool of k workers gives
//    k + 1 lanes and ParallelFor(n) with n <= 1 (or a 1-wide pool) runs
//    entirely on the caller with no synchronization.
//  * Exceptions thrown by the body are captured (first one wins) and
//    rethrown on the calling thread after all chunks finish.
//  * Calls from inside a worker run serially on that worker. This keeps
//    nested ParallelFor calls deadlock-free without needing work stealing.
//  * Concurrency defaults to std::thread::hardware_concurrency() and can be
//    overridden with the PREF_THREADS environment variable (useful for
//    forcing multi-threaded execution in tests on small machines, or for
//    pinning benchmarks).

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pref {

class ThreadPool {
 public:
  /// \param num_threads total concurrency (workers + calling thread).
  /// 0 means DefaultConcurrency(). A pool of 1 spawns no workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes ParallelFor can use (worker threads + the caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0) .. fn(n-1) across the pool with chunked static scheduling
  /// and blocks until every call returned. The first exception thrown by
  /// `fn` is rethrown here after all chunks finish. Iterations must be safe
  /// to run concurrently (disjoint state), but any given index runs exactly
  /// once and indexes within one chunk run in increasing order.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Chunked variant: splits [0, n) into at most num_threads() contiguous
  /// ranges and runs body(chunk_index, begin, end) for each. chunk_index is
  /// dense in [0, chunks_used) so callers can keep per-chunk accumulators
  /// (e.g. probe counters) without sharing or locks. Chunk boundaries
  /// depend on the pool width; use ParallelForMorsels when downstream
  /// logic must not observe the thread count.
  void ParallelForChunks(
      size_t n, const std::function<void(int chunk, size_t begin, size_t end)>& body);

  /// Morsel-driven variant: splits [0, n) into fixed-size ranges of
  /// `morsel_size` iterations (the last one ragged) and executes
  /// body(morsel_index, begin, end) for each with *dynamic* scheduling —
  /// up to num_threads() lanes pull the next unclaimed morsel from a shared
  /// atomic cursor, so skewed morsels load-balance instead of serializing a
  /// lane. Unlike ParallelForChunks, morsel boundaries depend only on `n`
  /// and `morsel_size`, never on the pool width: callers that keep
  /// per-morsel partial state (selection bitmap slices, partial hash
  /// tables) and combine it in morsel order get results that are invariant
  /// across thread counts. Any given morsel runs exactly once, on one lane;
  /// the first exception is rethrown after all lanes drain (morsels not yet
  /// claimed by the throwing lane still run on the others).
  void ParallelForMorsels(
      size_t n, size_t morsel_size,
      const std::function<void(size_t morsel, size_t begin, size_t end)>& body);

  /// Concurrency the default pool is built with: PREF_THREADS when set to a
  /// positive integer, else hardware_concurrency(), else 1.
  static int DefaultConcurrency();

  /// Process-wide shared pool (constructed on first use).
  static ThreadPool& Default();

 private:
  void WorkerLoop(int worker_index);
  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// Written only during construction and joined in the destructor; never
  /// mutated while workers run, so it needs no guard.
  std::vector<std::thread> workers_;

  // Observability (see DESIGN.md §6). Fetched once at construction so the
  // registry outlives the pool; per-task updates are relaxed atomics.
  Counter* tasks_executed_ = nullptr;       // pool.tasks_executed
  Gauge* queue_depth_ = nullptr;            // pool.queue_depth (high-water mark)
  std::vector<Counter*> worker_busy_us_;    // pool.worker_busy_us.<i>
};

}  // namespace pref
