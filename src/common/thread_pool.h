// Bounded worker pool: the process-wide concurrency substrate.
//
// The pool owns a fixed set of worker threads (sized to the hardware, never
// one thread per work item) and schedules parallel-for style workloads over
// them with chunked static scheduling. It replaces the old spawn-per-
// iteration ParallelFor, which oversubscribed the machine as soon as the
// iteration count exceeded the core count.
//
// Design notes:
//  * Workers are started once and reused across calls; a ParallelFor call
//    costs two mutex handshakes per chunk, not a thread spawn.
//  * [0, n) is split into at most num_threads() + 1 contiguous chunks; the
//    calling thread executes one chunk itself, so a pool of k workers gives
//    k + 1 lanes and ParallelFor(n) with n <= 1 (or a 1-wide pool) runs
//    entirely on the caller with no synchronization.
//  * Exceptions thrown by the body are captured (first one wins) and
//    rethrown on the calling thread after all chunks finish.
//  * Tasks are tagged with the submitting thread's CurrentTaskTag() (the
//    query id under the QueryScheduler; 0 otherwise) and queued per tag;
//    dispatch round-robins across tags so morsels of concurrent queries
//    interleave fairly instead of queueing FIFO behind one large query.
//    The executing thread re-establishes the tag (TaskTagScope), so nested
//    submissions and trace spans inherit the query identity.
//  * A thread waiting on its fork-join — the submitting caller or a worker
//    that issued a nested ParallelFor — does not block idle: it executes
//    queued tasks carrying its own tag until the join completes
//    (help-first joins). This keeps nested fan-out from concurrent outer
//    queries deadlock-free without spawning threads: no lane ever sleeps
//    while work it is responsible for sits in the queue, and a pool of k
//    lanes never runs more than k tasks at once.
//  * Concurrency defaults to std::thread::hardware_concurrency() and can be
//    overridden with the PREF_THREADS environment variable (useful for
//    forcing multi-threaded execution in tests on small machines, or for
//    pinning benchmarks).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pref {

class ThreadPool {
 public:
  /// \param num_threads total concurrency (workers + calling thread).
  /// 0 means DefaultConcurrency(). A pool of 1 spawns no workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes ParallelFor can use (worker threads + the caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0) .. fn(n-1) across the pool with chunked static scheduling
  /// and blocks until every call returned. The first exception thrown by
  /// `fn` is rethrown here after all chunks finish. Iterations must be safe
  /// to run concurrently (disjoint state), but any given index runs exactly
  /// once and indexes within one chunk run in increasing order.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Chunked variant: splits [0, n) into at most num_threads() contiguous
  /// ranges and runs body(chunk_index, begin, end) for each. chunk_index is
  /// dense in [0, chunks_used) so callers can keep per-chunk accumulators
  /// (e.g. probe counters) without sharing or locks. Chunk boundaries
  /// depend on the pool width; use ParallelForMorsels when downstream
  /// logic must not observe the thread count.
  void ParallelForChunks(
      size_t n, const std::function<void(int chunk, size_t begin, size_t end)>& body);

  /// Morsel-driven variant: splits [0, n) into fixed-size ranges of
  /// `morsel_size` iterations (the last one ragged) and executes
  /// body(morsel_index, begin, end) for each with *dynamic* scheduling —
  /// up to num_threads() lanes pull the next unclaimed morsel from a shared
  /// atomic cursor, so skewed morsels load-balance instead of serializing a
  /// lane. Unlike ParallelForChunks, morsel boundaries depend only on `n`
  /// and `morsel_size`, never on the pool width: callers that keep
  /// per-morsel partial state (selection bitmap slices, partial hash
  /// tables) and combine it in morsel order get results that are invariant
  /// across thread counts. Any given morsel runs exactly once, on one lane;
  /// the first exception is rethrown after all lanes drain (morsels not yet
  /// claimed by the throwing lane still run on the others).
  void ParallelForMorsels(
      size_t n, size_t morsel_size,
      const std::function<void(size_t morsel, size_t begin, size_t end)>& body);

  /// Fire-and-forget: enqueues `fn` as one pool task tagged with the
  /// calling thread's CurrentTaskTag(). The task runs on a worker, or on
  /// any thread helping the pool (a joiner draining its tag, or an
  /// external waiter calling TryRunOneTask). `fn` must not throw — there
  /// is no joiner to rethrow to. Posted tasks still queued at destruction
  /// are executed during shutdown, never dropped.
  void Post(std::function<void()> fn);

  /// Runs one queued task (any tag, round-robin pick) on the calling
  /// thread. Returns false without blocking when the queue is empty. This
  /// is how threads that wait on pool-external conditions (e.g. the
  /// QueryScheduler's Take) lend their lane to the pool instead of
  /// deadlocking a 1-lane configuration.
  bool TryRunOneTask();

  /// Concurrency the default pool is built with: PREF_THREADS when set to a
  /// positive integer, else hardware_concurrency(), else 1.
  static int DefaultConcurrency();

  /// Process-wide shared pool (constructed on first use).
  static ThreadPool& Default();

  /// Capability accessor for lock-ordering annotations in other classes
  /// (the Clang "private mutex" pattern): callers never lock through this —
  /// it exists so e.g. QueryScheduler can declare
  /// `Mutex mu_ ACQUIRED_BEFORE(pool_->pool_mu())` against a mutex that
  /// stays private. See the global lock order in common/mutex.h.
  Mutex* pool_mu() const RETURN_CAPABILITY(mu_) { return &mu_; }

 private:
  struct Task {
    uint64_t tag = 0;
    std::function<void()> fn;
  };

  /// Completion state shared by one fork-join call and its queued chunks.
  /// `remaining` is atomic so joiners and the shutdown path can poll it
  /// without taking a lock inside a condition predicate that already holds
  /// the pool mutex.
  struct ForkJoin {
    explicit ForkJoin(ThreadPool* p) : pool(p) {}

    /// The pool this join's chunks run on; Finish touches pool->mu_ for
    /// the wake-up handshake, and the lock-order annotation below needs a
    /// named object to order against.
    ThreadPool* const pool;
    std::atomic<int> remaining{0};
    /// Ordered after the pool mutex in the global hierarchy (see
    /// common/mutex.h): a lane may publish its error or rethrow while the
    /// pool is between handshakes, but never takes mu with mu_ held.
    Mutex mu ACQUIRED_AFTER(pool->mu_);
    std::exception_ptr error GUARDED_BY(mu);

    void Finish(std::exception_ptr e);
  };

  void WorkerLoop(int worker_index);
  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Enqueues under mu_ and updates the depth high-water mark. Caller
  /// notifies cv_ after releasing the lock.
  void EnqueueLocked(Task task) REQUIRES(mu_);
  /// Round-robin pop across tags; requires !QueueEmptyLocked().
  Task PopAnyLocked() REQUIRES(mu_);
  /// Pops the oldest task carrying `tag`; returns false if none queued.
  bool PopTaggedLocked(uint64_t tag, Task* out) REQUIRES(mu_);
  bool QueueEmptyLocked() const REQUIRES(mu_) { return queued_ == 0; }
  bool HasTaggedLocked(uint64_t tag) const REQUIRES(mu_);

  /// Runs `task` with its tag established for the duration.
  void RunTask(Task task);
  /// Executes queued tasks carrying `tag` until `join` completes; sleeps
  /// only while neither is possible. Rethrows the join's first error.
  void HelpUntilDone(ForkJoin& join, uint64_t tag);

  mutable Mutex mu_;
  CondVar cv_;
  /// Per-tag FIFO queues (ordered map: round-robin visits tags in a
  /// deterministic cycle). queued_ is the total across tags.
  std::map<uint64_t, std::deque<Task>> queue_ GUARDED_BY(mu_);
  size_t queued_ GUARDED_BY(mu_) = 0;
  /// Next round-robin position: the first tag >= rr_next_tag_ is served.
  uint64_t rr_next_tag_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// Written only during construction and joined in the destructor; never
  /// mutated while workers run, so it needs no guard.
  std::vector<std::thread> workers_;

  // Observability (see DESIGN.md §6). Fetched once at construction so the
  // registry outlives the pool; per-task updates are relaxed atomics.
  Counter* tasks_executed_ = nullptr;       // pool.tasks_executed
  Gauge* queue_depth_ = nullptr;            // pool.queue_depth (high-water mark)
  std::vector<Counter*> worker_busy_us_;    // pool.worker_busy_us.<i>
};

}  // namespace pref
