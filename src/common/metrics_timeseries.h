// Time-series snapshots of MetricsRegistry instruments (DESIGN.md §11).
//
// A MetricsTimeseries tracks a fixed set of counters and gauges and, on
// every Tick(), records one sample into a fixed-capacity ring buffer:
// counters as *deltas since the previous tick* (rates once divided by the
// tick spacing), gauges as point-in-time values. Ticks are driven by the
// caller — per completed query, per N arrivals, whatever the driver's
// logical clock is — never by wall time, so a timeline is replayable and
// the class needs no clock (the determinism linter's wall-clock rule
// checks this).
//
// When the ring is full the oldest sample is overwritten and `dropped()`
// counts it; WriteJson() emits the surviving samples oldest-first.
//
// Thread safety: none — tick and export from one thread. The underlying
// registry reads are relaxed atomics, so concurrent metric *updates* are
// fine; concurrent Tick() calls are not.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pref {

class MetricsRegistry;

struct TimeseriesOptions {
  /// Ring capacity in samples; oldest samples drop once exceeded.
  size_t capacity = 512;
};

class MetricsTimeseries {
 public:
  /// Tracks `counters` (reported as per-tick deltas) and `gauges`
  /// (reported as values). Instruments that don't exist yet read as zero
  /// until something registers them. `registry` defaults to
  /// MetricsRegistry::Default().
  MetricsTimeseries(std::vector<std::string> counters,
                    std::vector<std::string> gauges,
                    TimeseriesOptions options = {},
                    MetricsRegistry* registry = nullptr);

  /// Records one sample stamped with the caller's logical-clock `label`
  /// (e.g. completed-query count).
  void Tick(double label);

  /// Samples currently held (<= capacity).
  size_t size() const;
  /// Samples overwritten because the ring was full.
  size_t dropped() const { return dropped_; }

  /// {"capacity":..,"dropped":..,"counters":[names],"gauges":[names],
  ///  "samples":[{"label":..,"counters":[deltas],"gauges":[values]}]}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  struct Sample {
    double label = 0;
    std::vector<int64_t> counter_deltas;
    std::vector<int64_t> gauge_values;
  };

  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  TimeseriesOptions options_;
  MetricsRegistry* registry_;

  std::vector<int64_t> prev_counters_;
  std::vector<Sample> ring_;
  size_t next_ = 0;   // ring slot the next sample writes
  size_t count_ = 0;  // samples held (saturates at capacity)
  size_t dropped_ = 0;
};

}  // namespace pref
