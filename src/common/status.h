// Status: the error-handling currency of the library.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Exceptions are not
// used on any hot path.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace pref {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,
  kNotImplemented = 3,
  kOutOfRange = 4,
  kInternalError = 5,
  kAlreadyExists = 6,
  kNotFound = 7,
  kExecutionError = 8,
  kCancelled = 9,
};

/// \brief Operation outcome: either OK or an error code plus message.
///
/// The OK state is represented by a null internal state pointer, making
/// `Status::OK()` and `ok()` checks free of allocation.
///
/// The class is [[nodiscard]]: any call that returns a Status and ignores
/// it is a compile warning (-Werror in CI). Handle it with
/// PREF_RETURN_NOT_OK (propagate) or PREF_CHECK_OK (abort on failure);
/// a bare `(void)` cast is not an accepted disposal — if a Status really
/// carries no information, the API should not return one.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status Invalid(Args&&... args) {
    return FromArgs(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status KeyError(Args&&... args) {
    return FromArgs(StatusCode::kKeyError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return FromArgs(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return FromArgs(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return FromArgs(StatusCode::kInternalError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return FromArgs(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return FromArgs(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ExecutionError(Args&&... args) {
    return FromArgs(StatusCode::kExecutionError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return FromArgs(StatusCode::kCancelled, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternalError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeAsString(code())) + ": " + message();
  }

  static const char* CodeAsString(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "Invalid";
      case StatusCode::kKeyError:
        return "KeyError";
      case StatusCode::kNotImplemented:
        return "NotImplemented";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kInternalError:
        return "Internal";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kExecutionError:
        return "ExecutionError";
      case StatusCode::kCancelled:
        return "Cancelled";
    }
    return "Unknown";
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status FromArgs(StatusCode code, Args&&... args) {
    std::ostringstream ss;
    (ss << ... << args);
    return Status(code, ss.str());
  }

  std::unique_ptr<State> state_;
};

namespace internal {

/// Terminates the process with the failed expression and Status. Kept out
/// of the macro body so the cold path is one outlined call. Writes to
/// stderr (never stdout: query output must stay clean for diffing).
[[noreturn]] inline void CheckOkFailed(const Status& st, const char* expr,
                                       const char* file, int line) {
  std::fprintf(stderr, "PREF_CHECK_OK(%s) failed at %s:%d: %s\n", expr, file,
               line, st.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace pref

/// Dies (abort, independent of NDEBUG) unless `expr` evaluates to an OK
/// Status. The checked-assert disposal for Status values that are
/// structurally infallible (e.g. schema construction from compile-time
/// literals): failure means the program itself is wrong, so it aborts
/// loudly instead of being swallowed by an `assert` that compiles out in
/// release builds.
#define PREF_CHECK_OK(expr)                                              \
  do {                                                                   \
    const ::pref::Status _pref_check_st = (expr);                        \
    if (!_pref_check_st.ok()) {                                          \
      ::pref::internal::CheckOkFailed(_pref_check_st, #expr, __FILE__,   \
                                      __LINE__);                         \
    }                                                                    \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define PREF_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::pref::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define PREF_CONCAT_IMPL(x, y) x##y
#define PREF_CONCAT(x, y) PREF_CONCAT_IMPL(x, y)

/// Evaluate an expression yielding Result<T>; on error, propagate the
/// Status; on success, move the value into `lhs`.
#define PREF_ASSIGN_OR_RAISE(lhs, rexpr)                               \
  auto PREF_CONCAT(_result_, __LINE__) = (rexpr);                      \
  if (!PREF_CONCAT(_result_, __LINE__).ok())                           \
    return PREF_CONCAT(_result_, __LINE__).status();                   \
  lhs = std::move(PREF_CONCAT(_result_, __LINE__)).ValueOrDie()
