#pragma once
// Canonical registry of every metric, span, and trace-category name the
// library emits — the single source of truth for the observability schema.
//
// Why a header of constants instead of ad-hoc literals: the BENCH_*.json
// metric snapshots and Chrome-trace exports are consumed by name. A typo'd
// literal ("scheduler.comitted") doesn't fail any test — it silently forks
// the schema into a twin nobody reads. Centralizing the names makes the
// compiler catch misspellings at call sites, and gives the observability-
// schema rule in tools/pref_analyze.py a ground truth to check string
// literals against (unregistered names and edit-distance-1 near-duplicates
// of a registered name are findings; see DESIGN.md §14).
//
// Conventions (DESIGN.md §6):
//  * Metric names are dot-separated lowercase paths, subsystem first.
//  * Constants ending in `Prefix` name dynamic families — call sites
//    append a runtime suffix ("pool.worker_busy_us." + std::to_string(i)).
//    The analyzer matches such literals by prefix.
//  * Span names are CamelCase with dotted sub-phases (BulkLoad.route);
//    trace categories are lowercase dotted.
//
// Adding a metric: add the constant here, use it at the call site, and
// mention it in DESIGN.md §6 if it feeds a bench schema. pref_analyze's
// metric-name rule fails CI on a literal that bypasses this header.

namespace pref {
namespace metric_names {

// ---- counters ------------------------------------------------------------
// ThreadPool (src/common/thread_pool.cc)
inline constexpr char kPoolTasksExecuted[] = "pool.tasks_executed";
// Design enumeration (src/design)
inline constexpr char kDesignConfigsEnumerated[] = "design.configs_enumerated";
inline constexpr char kDesignConfigsPruned[] = "design.configs_pruned";
inline constexpr char kDesignEstimatorInvocations[] =
    "design.estimator_invocations";
// QueryScheduler (src/engine/scheduler.cc)
inline constexpr char kSchedulerSubmitted[] = "scheduler.submitted";
inline constexpr char kSchedulerCompleted[] = "scheduler.completed";
inline constexpr char kSchedulerCancelled[] = "scheduler.cancelled";
// Executor (src/engine/executor.cc)
inline constexpr char kEngineQueries[] = "engine.queries";
inline constexpr char kEngineExchangeBytes[] = "engine.exchange.bytes";
inline constexpr char kEngineExchangeRows[] = "engine.exchange.rows";
inline constexpr char kEngineExchangeLocalRows[] = "engine.exchange.local_rows";
inline constexpr char kEngineRowsProcessed[] = "engine.rows_processed";
inline constexpr char kExecScanMorsels[] = "exec.scan.morsels";
inline constexpr char kExecScanRows[] = "exec.scan.rows";
inline constexpr char kExecAggMorsels[] = "exec.agg.morsels";
inline constexpr char kExecAggRows[] = "exec.agg.rows";
inline constexpr char kExecAggGroups[] = "exec.agg.groups";
// Migration (src/partition/migration.cc)
inline constexpr char kMigrationPlans[] = "migration.plans";
inline constexpr char kMigrationCompleted[] = "migration.completed";
inline constexpr char kMigrationCancelled[] = "migration.cancelled";
inline constexpr char kMigrationFailed[] = "migration.failed";
inline constexpr char kMigrationTablesMoved[] = "migration.tables_moved";
inline constexpr char kMigrationTablesKept[] = "migration.tables_kept";
inline constexpr char kMigrationRowsMoved[] = "migration.rows_moved";
inline constexpr char kMigrationBytesMoved[] = "migration.bytes_moved";
inline constexpr char kMigrationEpochsPublished[] =
    "migration.epochs_published";
// Partitioner (src/partition/partitioner.cc)
inline constexpr char kPartitionTables[] = "partition.tables";
inline constexpr char kPartitionRowsRouted[] = "partition.rows_routed";
inline constexpr char kPartitionCopiesWritten[] = "partition.copies_written";
inline constexpr char kPartitionIndexLookups[] = "partition.index_lookups";
// Bulk loader (src/partition/bulk_loader.cc)
inline constexpr char kLoadRowsInserted[] = "load.rows_inserted";
inline constexpr char kLoadCopiesWritten[] = "load.copies_written";
inline constexpr char kLoadIndexLookups[] = "load.index_lookups";
inline constexpr char kLoadScanProbes[] = "load.scan_probes";

// ---- gauges --------------------------------------------------------------
inline constexpr char kPoolQueueDepth[] = "pool.queue_depth";
inline constexpr char kSchedulerInFlight[] = "scheduler.in_flight";
inline constexpr char kSchedulerBacklog[] = "scheduler.backlog";
inline constexpr char kMonitorDriftMilli[] = "monitor.drift_milli";
inline constexpr char kMonitorSkewMilli[] = "monitor.skew_milli";
inline constexpr char kMonitorWindowsCompleted[] = "monitor.windows_completed";

// ---- histograms ----------------------------------------------------------
inline constexpr char kSchedulerQuerySeconds[] = "scheduler.query_seconds";
inline constexpr char kSchedulerQueueWaitSeconds[] =
    "scheduler.queue_wait_seconds";
inline constexpr char kEngineQuerySeconds[] = "engine.query_seconds";
inline constexpr char kLoadAppendSeconds[] = "load.append_seconds";

// ---- dynamic families (runtime suffix appended to the prefix) ------------
// pool.worker_busy_us.<worker index>
inline constexpr char kPoolWorkerBusyUsPrefix[] = "pool.worker_busy_us.";
// monitor.partition_rows.<partition id>
inline constexpr char kMonitorPartitionRowsPrefix[] = "monitor.partition_rows.";

// ---- trace span names ----------------------------------------------------
inline constexpr char kSpanQuery[] = "Query";
inline constexpr char kSpanExecuteQuery[] = "ExecuteQuery";
inline constexpr char kSpanExecutePlan[] = "ExecutePlan";
inline constexpr char kSpanRewrite[] = "Rewrite";
inline constexpr char kSpanScanSelect[] = "Scan.select";
inline constexpr char kSpanScanAppend[] = "Scan.append";
inline constexpr char kSpanAggGroup[] = "Agg.group";
inline constexpr char kSpanAggFold[] = "Agg.fold";
inline constexpr char kSpanPlanMigration[] = "PlanMigration";
inline constexpr char kSpanVerifyColocation[] = "VerifyColocation";
inline constexpr char kSpanMigration[] = "Migration";
inline constexpr char kSpanMigrationEpoch[] = "Migration.epoch";
inline constexpr char kSpanMigrationTable[] = "Migration.table";
inline constexpr char kSpanPartitionDatabase[] = "PartitionDatabase";
inline constexpr char kSpanPartitionTable[] = "PartitionTable";
inline constexpr char kSpanPartitionTableRoute[] = "PartitionTable.route";
inline constexpr char kSpanPartitionTableAppend[] = "PartitionTable.append";
inline constexpr char kSpanPartitionTableIndex[] = "PartitionTable.index";
inline constexpr char kSpanBulkLoad[] = "BulkLoad";
inline constexpr char kSpanBulkLoadRoute[] = "BulkLoad.route";
inline constexpr char kSpanBulkLoadAppend[] = "BulkLoad.append";
inline constexpr char kSpanBulkLoadIndex[] = "BulkLoad.index";
// Simulated-timeline exchange spans are dynamic: "<op name>" on sim.node
// tracks and "<op name>.exchange" on the network track (executor.cc
// EmitSimulatedTimeline); the per-operator span in ExecOperator uses
// OpKindName(kind). Those names come from the plan, not this registry.
inline constexpr char kSpanExchangeSuffix[] = ".exchange";

// ---- trace categories ----------------------------------------------------
inline constexpr char kCategoryDefault[] = "default";
inline constexpr char kCategoryScheduler[] = "scheduler";
inline constexpr char kCategoryEngine[] = "engine";
inline constexpr char kCategoryEngineOp[] = "engine.op";
inline constexpr char kCategoryEngineMorsel[] = "engine.morsel";
inline constexpr char kCategoryPartition[] = "partition";
inline constexpr char kCategoryLoad[] = "load";
inline constexpr char kCategoryMigration[] = "migration";
inline constexpr char kCategorySimNode[] = "sim.node";
inline constexpr char kCategorySimNet[] = "sim.net";

}  // namespace metric_names
}  // namespace pref
