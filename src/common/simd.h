// SIMD kernel layer with runtime CPU dispatch (DESIGN.md §13).
//
// This header is the single home of raw vector intrinsics in the tree
// (tools/lint_determinism.py flags <immintrin.h> anywhere else). Every
// kernel comes in a scalar form that is always compiled and always
// correct, plus AVX2 / AVX-512 forms compiled via per-function target
// attributes (so the translation unit itself needs no -mavx2) and chosen
// at run time. The vector forms are *bit-identical* to the scalar forms —
// all kernels are pure integer arithmetic — which tests/kernels_test.cc
// pins at every supported level and CI re-checks with the whole suite
// under PREF_FORCE_SCALAR=1.
//
// Dispatch rules:
//   * DetectLevel() probes the CPU once (AVX-512 needs F+DQ+BW+VL; AVX2
//     stands alone) and honors PREF_FORCE_SCALAR=1, the CI escape hatch.
//   * Every kernel takes an optional explicit Level so tests and benches
//     can pit the paths against each other in one process; production
//     callers use the default (the cached detected level).
//
// Kernels:
//   * ExclusiveSum     — the counting-sort scan gating both exchange
//                        passes, per *Parallel Prefix Sum with SIMD*
//                        (PAPERS.md): in-register lane scan + carried
//                        block total, no serial per-element chain.
//   * HashCombineInt64 / HashCombineF64 — batch MurmurHash3-finalizer
//                        lanes feeding Column::HashCombineInto (join
//                        build/probe keys, hash-partitioning targets).
//   * BitmapToSelection — selection-bitmap → selection-vector compaction
//                        (movemask + ctz on AVX2, compress-store on
//                        AVX-512) behind ExecScan/ExecFilter.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PREF_SIMD_X86 1
#include <immintrin.h>
#else
#define PREF_SIMD_X86 0
#endif

// GCC's AVX-512 intrinsic wrappers pass _mm512_undefined_epi32() as the
// merge operand of unmasked operations, which -Wmaybe-uninitialized
// reports at every inline expansion (GCC PR 105593). The value is dead by
// construction (the mask is all-ones), so silence the false positive for
// this header's kernels only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pref::simd {

/// Instruction-set tiers, ordered: a level implies every lower one.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

/// Probes the CPU (once per call — callers cache via ActiveLevel). The
/// PREF_FORCE_SCALAR=1 environment variable pins the scalar tier no matter
/// what the hardware offers; CI runs the whole suite that way.
inline Level DetectLevel() {
  const char* force = std::getenv("PREF_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return Level::kScalar;
#if PREF_SIMD_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

namespace internal {
inline std::atomic<int>& ActiveLevelStorage() {
  static std::atomic<int> level{static_cast<int>(DetectLevel())};
  return level;
}
}  // namespace internal

/// The cached dispatch level every kernel defaults to.
inline Level ActiveLevel() {
  return static_cast<Level>(
      internal::ActiveLevelStorage().load(std::memory_order_relaxed));
}

/// Test hook: overrides the dispatch level (clamped to what the CPU
/// actually supports, so forcing kAvx512 on an AVX2 box stays correct).
inline void SetActiveLevelForTest(Level level) {
  const Level detected = DetectLevel();
  if (static_cast<int>(level) > static_cast<int>(detected)) level = detected;
  internal::ActiveLevelStorage().store(static_cast<int>(level),
                                       std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Exclusive prefix sum: out[0] = 0, out[i+1] = out[i] + v[i], out has n+1
// entries (the trailing one holds the total) — the ScatterPlan offsets and
// JoinHashTable chain-offsets shape. Elements are uint32_t on purpose: the
// operands are row counts (row ids are uint32_t everywhere in the engine),
// and halving the lane width doubles SIMD throughput, per the 32-bit scans
// in *Parallel Prefix Sum with SIMD*.
// ---------------------------------------------------------------------------

inline void ExclusiveSumScalar(const uint32_t* v, size_t n, uint32_t* out) {
  uint32_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = run;
    run += v[i];
  }
  out[n] = run;
}

#if PREF_SIMD_X86

/// AVX2 8-lane scan: per block, an in-register inclusive scan (in-lane
/// byte shifts + one cross-lane fix-up) produces the block's running sums
/// without a per-element serial chain; only the block total carries
/// between iterations. The inclusive block stores at out+i+1 — exactly the
/// exclusive sums shifted by one — so no extra shuffle pays for
/// exclusivity.
__attribute__((target("avx2"))) inline void ExclusiveSumAvx2(const uint32_t* v,
                                                             size_t n,
                                                             uint32_t* out) {
  out[0] = 0;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i lane3 = _mm256_set1_epi32(3);
  const __m256i lane7 = _mm256_set1_epi32(7);
  __m256i run = zero;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Each 128-bit half now holds its own scan; push the low half's total
    // into every element of the high half.
    __m256i t = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, lane3), zero,
                                   0x0F);
    x = _mm256_add_epi32(x, t);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 1),
                        _mm256_add_epi32(x, run));
    run = _mm256_add_epi32(run, _mm256_permutevar8x32_epi32(x, lane7));
  }
  uint32_t carry =
      static_cast<uint32_t>(_mm_cvtsi128_si32(_mm256_castsi256_si128(run)));
  for (; i < n; ++i) {
    out[i] = carry;
    carry += v[i];
  }
  out[n] = carry;
}

/// AVX-512 16-lane scan: four global valignd shift-add steps
/// (Hillis-Steele over the full register), same out+1 store trick.
__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) inline void
ExclusiveSumAvx512(const uint32_t* v, size_t n, uint32_t* out) {
  out[0] = 0;
  const __m512i zero = _mm512_setzero_si512();
  const __m512i lane15 = _mm512_set1_epi32(15);
  __m512i run = zero;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i x = _mm512_loadu_si512(v + i);
    x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 15));  // shl 1
    x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 14));  // shl 2
    x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 12));  // shl 4
    x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 8));   // shl 8
    _mm512_storeu_si512(out + i + 1, _mm512_add_epi32(x, run));
    run = _mm512_add_epi32(run, _mm512_permutexvar_epi32(lane15, x));
  }
  uint32_t carry =
      static_cast<uint32_t>(_mm_cvtsi128_si32(_mm512_castsi512_si128(run)));
  for (; i < n; ++i) {
    out[i] = carry;
    carry += v[i];
  }
  out[n] = carry;
}

#endif  // PREF_SIMD_X86

inline void ExclusiveSum(const uint32_t* v, size_t n, uint32_t* out,
                         Level level = ActiveLevel()) {
#if PREF_SIMD_X86
  if (level == Level::kAvx512) return ExclusiveSumAvx512(v, n, out);
  if (level == Level::kAvx2) return ExclusiveSumAvx2(v, n, out);
#else
  (void)level;
#endif
  ExclusiveSumScalar(v, n, out);
}

// ---------------------------------------------------------------------------
// Batch hash combine: acc[i] = HashCombine(acc[i], HashInt64(keys[i])) — the
// whole join/partitioning key-hash loop as data-parallel integer lanes.
// ---------------------------------------------------------------------------

inline void HashCombineInt64Scalar(const int64_t* keys, size_t n,
                                   uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) acc[i] = HashCombine(acc[i], HashInt64(keys[i]));
}

#if PREF_SIMD_X86

/// 64×64→64 multiply from 32-bit halves (AVX2 has no vpmullq).
__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline void HashCombineInt64Avx2(
    const int64_t* keys, size_t n, uint64_t* acc) {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  const __m256i gold =
      _mm256_set1_epi64x(static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
    k = Mul64Avx2(k, c1);
    k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
    k = Mul64Avx2(k, c2);
    k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    // HashCombine(a, k) = a ^ (k + gold + (a << 6) + (a >> 2)).
    __m256i mix = _mm256_add_epi64(
        _mm256_add_epi64(k, gold),
        _mm256_add_epi64(_mm256_slli_epi64(a, 6), _mm256_srli_epi64(a, 2)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_xor_si256(a, mix));
  }
  HashCombineInt64Scalar(keys + i, n - i, acc + i);
}

__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) inline void
HashCombineInt64Avx512(const int64_t* keys, size_t n, uint64_t* acc) {
  const __m512i c1 = _mm512_set1_epi64(static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m512i c2 = _mm512_set1_epi64(static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  const __m512i gold =
      _mm512_set1_epi64(static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i k = _mm512_loadu_si512(keys + i);
    k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
    k = _mm512_mullo_epi64(k, c1);
    k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
    k = _mm512_mullo_epi64(k, c2);
    k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
    __m512i a = _mm512_loadu_si512(acc + i);
    __m512i mix = _mm512_add_epi64(
        _mm512_add_epi64(k, gold),
        _mm512_add_epi64(_mm512_slli_epi64(a, 6), _mm512_srli_epi64(a, 2)));
    _mm512_storeu_si512(acc + i, _mm512_xor_si512(a, mix));
  }
  HashCombineInt64Scalar(keys + i, n - i, acc + i);
}

#endif  // PREF_SIMD_X86

inline void HashCombineInt64(const int64_t* keys, size_t n, uint64_t* acc,
                             Level level = ActiveLevel()) {
#if PREF_SIMD_X86
  if (level == Level::kAvx512) return HashCombineInt64Avx512(keys, n, acc);
  if (level == Level::kAvx2) return HashCombineInt64Avx2(keys, n, acc);
#else
  (void)level;
#endif
  HashCombineInt64Scalar(keys, n, acc);
}

/// Double keys hash by bit pattern (Column::HashAt semantics); the vector
/// paths load the same 64-bit patterns the scalar memcpy produces, so all
/// levels agree bit for bit (NaNs and -0.0 included).
inline void HashCombineF64(const double* keys, size_t n, uint64_t* acc,
                           Level level = ActiveLevel()) {
#if PREF_SIMD_X86
  if (level != Level::kScalar) {
    static_assert(sizeof(double) == sizeof(int64_t));
    return HashCombineInt64(reinterpret_cast<const int64_t*>(keys), n, acc,
                            level);
  }
#else
  (void)level;
#endif
  for (size_t i = 0; i < n; ++i) {
    int64_t bits;
    std::memcpy(&bits, &keys[i], sizeof(bits));
    acc[i] = HashCombine(acc[i], HashInt64(bits));
  }
}

// ---------------------------------------------------------------------------
// Selection compaction: bitmap bytes (0 = drop, nonzero = keep) → selection
// vector of row ids base+i. Returns the number of ids written; `out` must
// have room for n entries.
// ---------------------------------------------------------------------------

inline size_t BitmapToSelectionScalar(const uint8_t* bitmap, size_t n,
                                      uint32_t base, uint32_t* out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (bitmap[i] != 0) out[k++] = base + static_cast<uint32_t>(i);
  }
  return k;
}

#if PREF_SIMD_X86

/// AVX2: 32 bitmap bytes → one movemask word, then emit one id per set bit
/// (ctz + clear-lowest). Branch-free per chunk; cost scales with matches,
/// not with rows, once the bitmap is sparse.
__attribute__((target("avx2"))) inline size_t BitmapToSelectionAvx2(
    const uint8_t* bitmap, size_t n, uint32_t base, uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  size_t k = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bitmap + i));
    uint32_t mask = static_cast<uint32_t>(
        ~_mm256_movemask_epi8(_mm256_cmpeq_epi8(b, zero)));
    while (mask != 0) {
      const uint32_t bit = static_cast<uint32_t>(__builtin_ctz(mask));
      out[k++] = base + static_cast<uint32_t>(i) + bit;
      mask &= mask - 1;
    }
  }
  k += BitmapToSelectionScalar(bitmap + i, n - i,
                               base + static_cast<uint32_t>(i), out + k);
  return k;
}

/// AVX-512: 16 bytes → mask, then one vpcompressd stores exactly the
/// selected ids — no per-bit loop at all.
__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) inline size_t
BitmapToSelectionAvx512(const uint8_t* bitmap, size_t n, uint32_t base,
                        uint32_t* out) {
  const __m512i step = _mm512_set1_epi32(16);
  __m512i idx = _mm512_add_epi32(
      _mm512_set1_epi32(static_cast<int>(base)),
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));
  size_t k = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bitmap + i));
    const __mmask16 m = _mm_test_epi8_mask(b, b);
    _mm512_mask_compressstoreu_epi32(out + k, m, idx);
    k += static_cast<size_t>(__builtin_popcount(m));
    idx = _mm512_add_epi32(idx, step);
  }
  k += BitmapToSelectionScalar(bitmap + i, n - i,
                               base + static_cast<uint32_t>(i), out + k);
  return k;
}

#endif  // PREF_SIMD_X86

inline size_t BitmapToSelection(const uint8_t* bitmap, size_t n, uint32_t base,
                                uint32_t* out, Level level = ActiveLevel()) {
#if PREF_SIMD_X86
  if (level == Level::kAvx512) return BitmapToSelectionAvx512(bitmap, n, base, out);
  if (level == Level::kAvx2) return BitmapToSelectionAvx2(bitmap, n, base, out);
#else
  (void)level;
#endif
  return BitmapToSelectionScalar(bitmap, n, base, out);
}

}  // namespace pref::simd

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
