#include "common/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/json.h"

namespace pref {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBounds();
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(num_buckets());
  for (size_t i = 0; i < num_buckets(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1us .. 100s, half-decade steps.
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e3; decade *= 10) {
    bounds.push_back(decade);
    if (decade * 5 <= 100) bounds.push_back(decade * 5);
  }
  return bounds;
}

size_t Histogram::BucketOf(double v) const {
  // First bound >= v; everything past the last bound lands in the overflow
  // bucket at index bounds_.size().
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_buckets(); ++i) total += BucketCount(i);
  return total;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (nearest-rank, 1-based), then walk the
  // cumulative counts to the bucket containing it.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    const uint64_t count = BucketCount(i);
    if (cumulative + count < rank) {
      cumulative += count;
      continue;
    }
    if (i >= bounds_.size()) return bounds_.back();  // overflow: floor
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    // Linear interpolation within the bucket.
    const double fraction =
        count == 0 ? 1.0
                   : static_cast<double>(rank - cumulative) /
                         static_cast<double>(count);
    return lo + (hi - lo) * fraction;
  }
  return bounds_.back();  // unreachable: total > 0 guarantees a hit
}

void Histogram::Reset() {
  for (size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.value = static_cast<double>(c->Get());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = static_cast<double>(g->Get());
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.value = h->Sum();
    s.count = h->TotalCount();
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      double le = i < bounds.size() ? bounds[i]
                                    : std::numeric_limits<double>::infinity();
      s.buckets.emplace_back(le, h->BucketCount(i));
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  auto samples = Snapshot();
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::kCounter) continue;
    w.Key(s.name);
    w.UInt(static_cast<uint64_t>(s.value));
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::kGauge) continue;
    w.Key(s.name);
    w.Int(static_cast<int64_t>(s.value));
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::kHistogram) continue;
    w.Key(s.name);
    w.BeginObject();
    w.Key("count");
    w.UInt(s.count);
    w.Key("sum");
    w.Double(s.value);
    w.Key("buckets");
    w.BeginArray();
    for (const auto& [le, count] : s.buckets) {
      w.BeginObject();
      w.Key("le");
      w.Double(le);  // +inf encodes as null (overflow bucket)
      w.Key("count");
      w.UInt(count);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace pref
