// Span-based tracer with Chrome trace-event (chrome://tracing / Perfetto)
// JSON export.
//
// Two ways to record:
//  * RAII TraceSpan — wall-clock span on the calling OS thread, recorded
//    into a per-thread buffer on destruction (one uncontended lock per
//    span; no cross-thread contention on the hot path).
//  * Tracer::AddComplete — explicit start/duration on an arbitrary
//    (pid, tid) track. The executor uses this to lay per-operator work out
//    on a *simulated-cluster* timeline: pid kSimulatedPid, one track per
//    simulated node plus a network track, timestamps in simulated
//    microseconds (see DESIGN.md §6).
//
// Tracing is off by default; when disabled, a TraceSpan costs one relaxed
// atomic load. With PREF_METRICS=0 the span type compiles to an empty
// object and the cost is zero.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"  // PREF_METRICS default
#include "common/mutex.h"
#include "common/status.h"
#include "common/task_context.h"
#include "common/thread_annotations.h"

namespace pref {

/// All public methods are thread-safe: recording locks only the calling
/// thread's buffer (TraceSpan) or the tracer mutex (AddComplete,
/// SetTrackName, export). Enable/disable may race with recording — spans
/// in flight when tracing turns off are still recorded; spans started
/// while it was off never are.
class Tracer {
 public:
  /// pid used for wall-clock spans recorded by TraceSpan.
  static constexpr int kProcessPid = 1;
  /// pid used for explicit simulated-cluster timelines.
  static constexpr int kSimulatedPid = 2;

  Tracer();

  /// Process-wide shared tracer (what TraceSpan records into by default).
  static Tracer& Default();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer's epoch (the zero of every exported
  /// timestamp).
  double NowMicros() const;

  /// Records one complete ("ph":"X") event on an explicit track. No-op
  /// while disabled.
  void AddComplete(std::string name, std::string category, double ts_us,
                   double dur_us, int pid, int tid,
                   std::vector<std::pair<std::string, int64_t>> args = {});

  /// Names a track in the exported trace (chrome's thread_name metadata).
  /// Idempotent per (pid, tid).
  void SetTrackName(int pid, int tid, const std::string& name);

  /// Drops every recorded event (track names included).
  void Clear();

  size_t EventCount() const;

  /// Writes the Chrome trace-event JSON ({"traceEvents":[...]}).
  void WriteChromeTrace(std::ostream& os) const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  friend class TraceSpan;

  struct Event {
    std::string name;
    std::string category;
    double ts_us = 0;
    double dur_us = 0;
    int pid = kProcessPid;
    int tid = 0;
    std::vector<std::pair<std::string, int64_t>> args;
  };

  /// One recording thread's buffer. Each writer locks only its own buffer;
  /// the tracer-wide mutex is taken for registration and export (mu_ is
  /// always acquired before any buffer's mu, never the reverse — the
  /// ACQUIRED_AFTER annotation states that order for the analyzer; see the
  /// global hierarchy in common/mutex.h).
  struct ThreadBuffer {
    explicit ThreadBuffer(Tracer* t) : owner(t) {}

    Tracer* const owner;  // the tracer whose mu_ orders before this mu
    Mutex mu ACQUIRED_AFTER(owner->mu_);
    std::vector<Event> events GUARDED_BY(mu);
    int tid = 0;  // immutable after publication; read without the lock
  };

  ThreadBuffer& LocalBuffer();
  void Append(ThreadBuffer& buffer, Event event);

  /// Ordered before every buffer's mu (common/mutex.h): export and Clear
  /// hold mu_ while walking buffers_ and locking each buffer in turn; the
  /// reverse nesting never happens (ThreadBuffer::mu carries the matching
  /// ACQUIRED_AFTER).
  mutable Mutex mu_;
  /// The vector (and ThreadBuffer ownership) is guarded; the buffers
  /// themselves carry their own locks, so writers touch only mu of their
  /// buffer after the one-time registration under mu_.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  /// (pid, tid) -> track name, exported as metadata events.
  std::vector<std::pair<std::pair<int, int>, std::string>> track_names_
      GUARDED_BY(mu_);
  std::atomic<bool> enabled_{false};
  std::atomic<int> next_tid_{0};
  std::chrono::steady_clock::time_point epoch_;
  /// Process-unique id: the thread-local buffer cache keys on this rather
  /// than the tracer address, so a new tracer allocated where a destroyed
  /// one lived never resolves to the old tracer's (freed) buffers.
  uint64_t id_;
};

/// RAII wall-clock span: measures construction-to-destruction on the
/// calling thread and records a complete event into `tracer` (the process
/// default when omitted). `name`/`category` must outlive the span
/// (string literals in practice). AddArg attaches an integer argument to
/// the exported event; it is a cheap no-op when tracing was disabled at
/// construction. A disabled span costs one relaxed atomic load; with
/// PREF_METRICS=0 the type compiles to an empty object.
class TraceSpan {
 public:
#if PREF_METRICS
  explicit TraceSpan(const char* name, const char* category = "default",
                     Tracer* tracer = nullptr) {
    Tracer& t = tracer != nullptr ? *tracer : Tracer::Default();
    if (t.enabled()) {
      tracer_ = &t;
      name_ = name;
      category_ = category;
      start_us_ = t.NowMicros();
    }
  }
  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    Tracer::Event e;
    e.name = name_;
    e.category = category_;
    e.ts_us = start_us_;
    e.dur_us = tracer_->NowMicros() - start_us_;
    e.pid = Tracer::kProcessPid;
    // Stamp the owning query's id so concurrent queries stay separable in
    // the merged trace. Tag 0 (untagged) spans stay unchanged.
    if (const uint64_t tag = CurrentTaskTag(); tag != 0) {
      args_.emplace_back("qid", static_cast<int64_t>(tag));
    }
    e.args = std::move(args_);
    Tracer::ThreadBuffer& buffer = tracer_->LocalBuffer();
    e.tid = buffer.tid;
    tracer_->Append(buffer, std::move(e));
  }
  void AddArg(const char* key, int64_t value) {
    if (tracer_ != nullptr) args_.emplace_back(key, value);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled at entry
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  double start_us_ = 0;
  std::vector<std::pair<std::string, int64_t>> args_;
#else
  explicit TraceSpan(const char*, const char* = "default", Tracer* = nullptr) {}
  void AddArg(const char*, int64_t) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
#endif
};

}  // namespace pref
