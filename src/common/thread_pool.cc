#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "common/task_context.h"
#include "common/metric_names.h"

namespace pref {

namespace {

/// Set while a thread executes ThreadPool::WorkerLoop, so nested
/// ParallelFor calls from inside a task can recognise their own pool.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

void ThreadPool::ForkJoin::Finish(std::exception_ptr e) {
  if (e) {
    MutexLock lock(&mu);
    if (!error) error = e;
  }
  // The error (if any) is published before the final decrement, so the
  // joiner that observes remaining == 0 sees it. After the decrement this
  // object may be destroyed by the joiner — touch only the pool below.
  if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock/unlock pairs with the joiner's predicate evaluation under mu_:
    // either the joiner saw remaining == 0 already, or it is parked in
    // cv_.Wait and the NotifyAll below wakes it. Without the fence the
    // notify could land between the predicate check and the park.
    { MutexLock lock(&pool->mu_); }
    pool->cv_.NotifyAll();
  }
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultConcurrency();
  // Register metrics before spawning workers: the registry singleton then
  // finishes construction before this pool does and outlives it, so worker
  // threads can update counters right up to shutdown.
  MetricsRegistry& registry = MetricsRegistry::Default();
  tasks_executed_ = &registry.GetCounter(metric_names::kPoolTasksExecuted);
  queue_depth_ = &registry.GetGauge(metric_names::kPoolQueueDepth);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  worker_busy_us_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    worker_busy_us_.push_back(
        &registry.GetCounter(metric_names::kPoolWorkerBusyUsPrefix + std::to_string(i)));
  }
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  // A pool with no workers (1-lane configuration) has nobody to drain
  // tasks Posted but never claimed; run them here so Post never drops work.
  while (TryRunOneTask()) {
  }
}

void ThreadPool::EnqueueLocked(Task task) {
  queue_[task.tag].push_back(std::move(task));
  ++queued_;
#if PREF_METRICS
  queue_depth_->SetMax(static_cast<int64_t>(queued_));
#endif
}

ThreadPool::Task ThreadPool::PopAnyLocked() {
  // Round-robin across tags: serve the first tag at or after the cursor,
  // wrapping to the smallest. With one active tag this degrades to FIFO;
  // with concurrent queries each pop advances to the next query's queue,
  // so no query's morsels wait behind the entire backlog of another.
  auto it = queue_.lower_bound(rr_next_tag_);
  if (it == queue_.end()) it = queue_.begin();
  Task task = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queue_.erase(it);
  rr_next_tag_ = task.tag + 1;
  --queued_;
  return task;
}

bool ThreadPool::PopTaggedLocked(uint64_t tag, Task* out) {
  auto it = queue_.find(tag);
  if (it == queue_.end()) return false;
  *out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queue_.erase(it);
  --queued_;
  return true;
}

bool ThreadPool::HasTaggedLocked(uint64_t tag) const {
  // Empty per-tag deques are erased eagerly, so presence means non-empty.
  return queue_.find(tag) != queue_.end();
}

void ThreadPool::RunTask(Task task) {
  // Re-establish the submitter's tag so nested fan-outs and trace spans on
  // this thread observe the owning query's identity.
  TaskTagScope scope(task.tag);
  task.fn();
#if PREF_METRICS
  tasks_executed_->Add(1);
#endif
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_worker_pool = this;
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      // The predicate runs with mu_ held (CondVar reacquires before each
      // evaluation), so the guarded reads below are in order.
      cv_.Wait(&lock, [this]() REQUIRES(mu_) {
        return shutdown_ || !QueueEmptyLocked();
      });
      if (QueueEmptyLocked()) return;  // shutdown with a drained queue
      task = PopAnyLocked();
    }
#if PREF_METRICS
    Stopwatch busy;
    RunTask(std::move(task));
    worker_busy_us_[static_cast<size_t>(worker_index)]->Add(
        static_cast<uint64_t>(busy.ElapsedSeconds() * 1e6));
#else
    (void)worker_index;
    RunTask(std::move(task));
#endif
  }
}

bool ThreadPool::OnWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::Post(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    EnqueueLocked(Task{CurrentTaskTag(), std::move(fn)});
  }
  // NotifyAll, not NotifyOne: waiters are a mix of workers and joiners with
  // tag-filtered predicates, and a single notify could land on a joiner
  // that ignores this task and never re-notifies the worker that wants it.
  cv_.NotifyAll();
}

bool ThreadPool::TryRunOneTask() {
  Task task;
  {
    MutexLock lock(&mu_);
    if (QueueEmptyLocked()) return false;
    task = PopAnyLocked();
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::HelpUntilDone(ForkJoin& join, uint64_t tag) {
  // Help-first join: instead of parking while peer lanes work, execute
  // queued tasks that carry this join's tag. Every task queued by this
  // join (and by any nested join beneath it) carries the same tag, so the
  // joiner itself can always drain the work it is waiting on — that is
  // what makes nested fan-out from concurrent submitters deadlock-free
  // even when every worker is blocked in a join of its own.
  while (join.remaining.load(std::memory_order_acquire) != 0) {
    Task task;
    bool have = false;
    {
      MutexLock lock(&mu_);
      have = PopTaggedLocked(tag, &task);
      if (!have) {
        // Nothing helpable right now. Park until the join completes or a
        // same-tag task shows up (a nested fan-out on another lane).
        cv_.Wait(&lock, [this, &join, tag]() REQUIRES(mu_) {
          return join.remaining.load(std::memory_order_acquire) == 0 ||
                 HasTaggedLocked(tag);
        });
      }
    }
    if (have) RunTask(std::move(task));
  }
  MutexLock lock(&join.mu);
  if (join.error) std::rethrow_exception(join.error);
}

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  const int lanes = num_threads();
  if (lanes <= 1 || n == 1) {
    body(0, 0, n);
    return;
  }
  const int chunks = static_cast<int>(
      std::min<size_t>(n, static_cast<size_t>(lanes)));
  const size_t base = n / static_cast<size_t>(chunks);
  const size_t extra = n % static_cast<size_t>(chunks);

  ForkJoin join(this);
  join.remaining.store(chunks, std::memory_order_relaxed);
  const uint64_t tag = CurrentTaskTag();
  {
    MutexLock lock(&mu_);
    // Chunk 0 is reserved for the calling thread; queue the rest. The
    // queued chunks carry the caller's tag so HelpUntilDone below can
    // execute them itself if no worker is free.
    for (int c = 1; c < chunks; ++c) {
      size_t b = base * static_cast<size_t>(c) +
                 std::min<size_t>(static_cast<size_t>(c), extra);
      size_t e = b + base + (static_cast<size_t>(c) < extra ? 1 : 0);
      EnqueueLocked(Task{tag, [this, &join, &body, c, b, e] {
                           std::exception_ptr err;
                           try {
                             body(c, b, e);
                           } catch (...) {
                             err = std::current_exception();
                           }
                           join.Finish(err);
                         }});
    }
  }
  cv_.NotifyAll();

  // The caller works too: chunk 0 runs here instead of idling on the latch.
  {
    std::exception_ptr err;
    try {
      body(0, 0, base + (extra > 0 ? 1 : 0));
    } catch (...) {
      err = std::current_exception();
    }
    join.Finish(err);
  }
  HelpUntilDone(join, tag);
}

void ThreadPool::ParallelForMorsels(
    size_t n, size_t morsel_size,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  if (morsel_size == 0) morsel_size = 1;
  const size_t morsels = (n + morsel_size - 1) / morsel_size;
  auto run = [&body, n, morsel_size](size_t m) {
    const size_t begin = m * morsel_size;
    body(m, begin, std::min(n, begin + morsel_size));
  };
  const int lanes = num_threads();
  if (lanes <= 1 || morsels == 1) {
    for (size_t m = 0; m < morsels; ++m) run(m);
    return;
  }
  // Dynamic scheduling: one drain closure per lane, each pulling the next
  // unclaimed morsel from the shared cursor until empty. All state lives on
  // this frame; HelpUntilDone keeps it alive until every lane finished.
  // Morsel boundaries depend only on n and morsel_size, so results stay
  // bit-identical no matter which lanes (or helping joiners) run them.
  std::atomic<size_t> next{0};
  ForkJoin join(this);
  const int tasks = static_cast<int>(
      std::min<size_t>(morsels, static_cast<size_t>(lanes)));
  join.remaining.store(tasks, std::memory_order_relaxed);
  auto drain = [this, &join, &next, &run, morsels] {
    std::exception_ptr err;
    try {
      for (size_t m = next.fetch_add(1, std::memory_order_relaxed); m < morsels;
           m = next.fetch_add(1, std::memory_order_relaxed)) {
        run(m);
      }
    } catch (...) {
      err = std::current_exception();
    }
    join.Finish(err);
  };
  const uint64_t tag = CurrentTaskTag();
  {
    MutexLock lock(&mu_);
    for (int t = 1; t < tasks; ++t) EnqueueLocked(Task{tag, drain});
  }
  cv_.NotifyAll();
  drain();  // the caller is a lane too
  HelpUntilDone(join, tag);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  ParallelForChunks(static_cast<size_t>(n), [&fn](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(static_cast<int>(i));
  });
}

int ThreadPool::DefaultConcurrency() {
  if (const char* env = std::getenv("PREF_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0 && v <= 1024) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pref
