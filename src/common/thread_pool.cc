#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/stopwatch.h"

namespace pref {

namespace {

/// Set while a thread executes ThreadPool::WorkerLoop, so nested
/// ParallelFor calls from inside a task can detect their own pool and fall
/// back to serial execution instead of deadlocking on a saturated queue.
thread_local const ThreadPool* t_worker_pool = nullptr;

/// Completion state shared by one ParallelFor call and its queued chunks.
struct ForkJoin {
  Mutex mu;
  CondVar done;
  int remaining GUARDED_BY(mu) = 0;
  std::exception_ptr error GUARDED_BY(mu);

  void Finish(std::exception_ptr e) {
    MutexLock lock(&mu);
    if (e && !error) error = e;
    if (--remaining == 0) done.NotifyOne();
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultConcurrency();
  // Register metrics before spawning workers: the registry singleton then
  // finishes construction before this pool does and outlives it, so worker
  // threads can update counters right up to shutdown.
  MetricsRegistry& registry = MetricsRegistry::Default();
  tasks_executed_ = &registry.GetCounter("pool.tasks_executed");
  queue_depth_ = &registry.GetGauge("pool.queue_depth");
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  worker_busy_us_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    worker_busy_us_.push_back(
        &registry.GetCounter("pool.worker_busy_us." + std::to_string(i)));
  }
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // The predicate runs with mu_ held (CondVar reacquires before each
      // evaluation), so the guarded reads below are in order.
      cv_.Wait(&lock, [this]() REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if PREF_METRICS
    Stopwatch busy;
    task();
    worker_busy_us_[static_cast<size_t>(worker_index)]->Add(
        static_cast<uint64_t>(busy.ElapsedSeconds() * 1e6));
    tasks_executed_->Add(1);
#else
    (void)worker_index;
    task();
#endif
  }
}

bool ThreadPool::OnWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  const int lanes = num_threads();
  if (lanes <= 1 || n == 1 || OnWorkerThread()) {
    body(0, 0, n);
    return;
  }
  const int chunks = static_cast<int>(
      std::min<size_t>(n, static_cast<size_t>(lanes)));
  const size_t base = n / static_cast<size_t>(chunks);
  const size_t extra = n % static_cast<size_t>(chunks);

  ForkJoin join;
  {
    MutexLock lock(&join.mu);
    join.remaining = chunks;
  }
  size_t begin = 0;
  {
    MutexLock lock(&mu_);
    // Chunk 0 is reserved for the calling thread; queue the rest.
    for (int c = 1; c < chunks; ++c) {
      size_t b = base * static_cast<size_t>(c) +
                 std::min<size_t>(static_cast<size_t>(c), extra);
      size_t e = b + base + (static_cast<size_t>(c) < extra ? 1 : 0);
      queue_.emplace_back([&join, &body, c, b, e] {
        std::exception_ptr err;
        try {
          body(c, b, e);
        } catch (...) {
          err = std::current_exception();
        }
        join.Finish(err);
      });
    }
#if PREF_METRICS
    queue_depth_->SetMax(static_cast<int64_t>(queue_.size()));
#endif
  }
  cv_.NotifyAll();

  // The caller works too: chunk 0 runs here instead of idling on the latch.
  {
    std::exception_ptr err;
    try {
      body(0, begin, base + (extra > 0 ? 1 : 0));
    } catch (...) {
      err = std::current_exception();
    }
    join.Finish(err);
  }
  MutexLock lock(&join.mu);
  join.done.Wait(&lock,
                 [&join]() REQUIRES(join.mu) { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

void ThreadPool::ParallelForMorsels(
    size_t n, size_t morsel_size,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  if (morsel_size == 0) morsel_size = 1;
  const size_t morsels = (n + morsel_size - 1) / morsel_size;
  auto run = [&body, n, morsel_size](size_t m) {
    const size_t begin = m * morsel_size;
    body(m, begin, std::min(n, begin + morsel_size));
  };
  const int lanes = num_threads();
  if (lanes <= 1 || morsels == 1 || OnWorkerThread()) {
    for (size_t m = 0; m < morsels; ++m) run(m);
    return;
  }
  // Dynamic scheduling: one worker closure per lane, each draining the
  // shared morsel cursor until empty. All state lives on this frame; the
  // ForkJoin wait below keeps it alive until every lane finished.
  std::atomic<size_t> next{0};
  ForkJoin join;
  const int tasks = static_cast<int>(
      std::min<size_t>(morsels, static_cast<size_t>(lanes)));
  {
    MutexLock lock(&join.mu);
    join.remaining = tasks;
  }
  auto drain = [&join, &next, &run, morsels] {
    std::exception_ptr err;
    try {
      for (size_t m = next.fetch_add(1, std::memory_order_relaxed); m < morsels;
           m = next.fetch_add(1, std::memory_order_relaxed)) {
        run(m);
      }
    } catch (...) {
      err = std::current_exception();
    }
    join.Finish(err);
  };
  {
    MutexLock lock(&mu_);
    for (int t = 1; t < tasks; ++t) queue_.emplace_back(drain);
#if PREF_METRICS
    queue_depth_->SetMax(static_cast<int64_t>(queue_.size()));
#endif
  }
  cv_.NotifyAll();
  drain();  // the caller is a lane too
  MutexLock lock(&join.mu);
  join.done.Wait(&lock,
                 [&join]() REQUIRES(join.mu) { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  ParallelForChunks(static_cast<size_t>(n), [&fn](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(static_cast<int>(i));
  });
}

int ThreadPool::DefaultConcurrency() {
  if (const char* env = std::getenv("PREF_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0 && v <= 1024) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pref
