#include "common/task_context.h"

namespace pref {

namespace {
thread_local uint64_t t_task_tag = 0;
}  // namespace

uint64_t CurrentTaskTag() { return t_task_tag; }

TaskTagScope::TaskTagScope(uint64_t tag) : prev_(t_task_tag) {
  t_task_tag = tag;
}

TaskTagScope::~TaskTagScope() { t_task_tag = prev_; }

}  // namespace pref
