// Deterministic pseudo-random utilities used by the data generators and the
// round-robin/orphan placement paths of the partitioners.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pref {

/// \brief xoshiro256** PRNG: fast, high-quality, fully deterministic for a
/// given seed. All generators in this library take explicit seeds so that
/// every benchmark run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed integer generator over the domain [1, n].
///
/// Used by the TPC-DS generator to produce skewed foreign-key references —
/// the property the paper exercises with TPC-DS ("complex schema with
/// skewed data"). Implements the Gray et al. rejection-free method with a
/// precomputed harmonic normalizer.
class ZipfGenerator {
 public:
  /// \param n domain size (values drawn from 1..n)
  /// \param theta skew parameter; 0 = uniform, ~0.8-1.2 = heavy skew
  ZipfGenerator(int64_t n, double theta);

  int64_t Next(Rng* rng);

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace pref
