// Minimal JSON utilities shared by the observability exporters: string
// escaping, a streaming writer with comma management, and a validating
// recursive-descent checker that can report the keys of the top-level
// object. Used by the metrics/trace JSON export, the bench --json emitter,
// and the CI schema validator. Deliberately not a DOM — nothing in the
// engine needs to *read* JSON beyond validation.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pref {

inline void JsonAppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

inline std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  JsonAppendEscaped(&out, s);
  return out;
}

/// \brief Streaming JSON writer. The caller drives structure
/// (BeginObject/Key/Value/EndObject); the writer inserts commas. No
/// validation beyond what the call sequence implies — emitting a value
/// where a key is required produces broken JSON, so keep usage simple.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* os) : os_(os) {}

  void BeginObject() {
    Prefix();
    *os_ << '{';
    stack_.push_back(false);
  }
  void EndObject() {
    stack_.pop_back();
    *os_ << '}';
  }
  void BeginArray() {
    Prefix();
    *os_ << '[';
    stack_.push_back(false);
  }
  void EndArray() {
    stack_.pop_back();
    *os_ << ']';
  }
  void Key(std::string_view k) {
    Prefix();
    *os_ << '"' << JsonEscaped(k) << "\":";
    after_key_ = true;
  }
  void String(std::string_view v) {
    Prefix();
    *os_ << '"' << JsonEscaped(v) << '"';
  }
  void Int(int64_t v) {
    Prefix();
    *os_ << v;
  }
  void UInt(uint64_t v) {
    Prefix();
    *os_ << v;
  }
  void Double(double v) {
    Prefix();
    if (!std::isfinite(v)) {
      // Raw JSON has no Infinity/NaN; encode as null.
      *os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *os_ << buf;
  }
  void Bool(bool v) {
    Prefix();
    *os_ << (v ? "true" : "false");
  }
  void Null() {
    Prefix();
    *os_ << "null";
  }

 private:
  /// Emits the separating comma for the second and later items of the
  /// current object/array; a value directly after Key() never separates.
  void Prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) *os_ << ',';
      stack_.back() = true;
    }
  }

  std::ostream* os_;
  std::vector<bool> stack_;  // per level: an item was already emitted
  bool after_key_ = false;
};

/// \brief Validating recursive-descent JSON checker.
///
/// `Valid(text)` accepts exactly one JSON value (surrounded by optional
/// whitespace). The two-argument form additionally records the keys of the
/// top-level object (empty if the top-level value is not an object) so
/// schema validators can check required fields without a DOM.
class JsonValidator {
 public:
  static bool Valid(std::string_view text) { return Valid(text, nullptr); }

  static bool Valid(std::string_view text, std::vector<std::string>* top_keys) {
    JsonValidator v(text);
    if (top_keys != nullptr) top_keys->clear();
    if (!v.Value(/*depth=*/0, top_keys)) return false;
    v.SkipWs();
    return v.pos_ == v.text_.size();
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool StringToken(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      } else {
        if (out != nullptr) *out += c;
        ++pos_;
      }
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value(int depth, std::vector<std::string>* top_keys) {
    if (depth > 128) return false;  // runaway nesting
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!StringToken(depth == 0 && top_keys != nullptr ? &key : nullptr)) {
          return false;
        }
        if (depth == 0 && top_keys != nullptr) top_keys->push_back(std::move(key));
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        if (!Value(depth + 1, top_keys)) return false;
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        if (!Value(depth + 1, top_keys)) return false;
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') return StringToken(nullptr);
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace pref
