#include "common/trace.h"

#include <fstream>
#include <unordered_map>

#include "common/json.h"

namespace pref {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  static std::atomic<uint64_t> next_id{0};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  // One buffer per (tracer, thread). Buffers are owned by the tracer; the
  // thread-local map only caches raw pointers, so thread exit needs no
  // cleanup and a long-lived tracer keeps events of exited threads. The
  // map is keyed by the tracer's process-unique id, not its address: a
  // tracer constructed where a destroyed one lived must not inherit the
  // old entry (the cached buffer would dangle).
  static thread_local std::unordered_map<uint64_t, ThreadBuffer*> t_buffers;
  auto it = t_buffers.find(id_);
  if (it != t_buffers.end()) return *it->second;
  auto buffer = std::make_unique<ThreadBuffer>(this);
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* raw = buffer.get();
  {
    MutexLock lock(&mu_);
    buffers_.push_back(std::move(buffer));
  }
  t_buffers.emplace(id_, raw);
  return *raw;
}

void Tracer::Append(ThreadBuffer& buffer, Event event) {
  MutexLock lock(&buffer.mu);
  buffer.events.push_back(std::move(event));
}

void Tracer::AddComplete(std::string name, std::string category, double ts_us,
                         double dur_us, int pid, int tid,
                         std::vector<std::pair<std::string, int64_t>> args) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  // Same query-identity stamp as TraceSpan: simulated-timeline events from
  // concurrent queries carry their owner's id.
  if (const uint64_t tag = CurrentTaskTag(); tag != 0) {
    args.emplace_back("qid", static_cast<int64_t>(tag));
  }
  e.args = std::move(args);
  Append(LocalBuffer(), std::move(e));
}

void Tracer::SetTrackName(int pid, int tid, const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [key, existing] : track_names_) {
    if (key == std::make_pair(pid, tid)) {
      existing = name;
      return;
    }
  }
  track_names_.emplace_back(std::make_pair(pid, tid), name);
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  for (auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    buffer->events.clear();
  }
  track_names_.clear();
}

size_t Tracer::EventCount() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  JsonWriter w(&os);
  w.BeginObject();
  // traceEvents first: consumers (and our JSON smoke checks) key on it
  // being the leading member.
  w.Key("traceEvents");
  w.BeginArray();
  MutexLock lock(&mu_);
  for (const auto& [key, name] : track_names_) {
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(key.first);
    w.Key("tid");
    w.Int(key.second);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.EndObject();
    w.EndObject();
  }
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    for (const auto& e : buffer->events) {
      w.BeginObject();
      w.Key("name");
      w.String(e.name);
      w.Key("cat");
      w.String(e.category);
      w.Key("ph");
      w.String("X");
      w.Key("ts");
      w.Double(e.ts_us);
      w.Key("dur");
      w.Double(e.dur_us);
      w.Key("pid");
      w.Int(e.pid);
      w.Key("tid");
      w.Int(e.tid);
      if (!e.args.empty()) {
        w.Key("args");
        w.BeginObject();
        for (const auto& [k, v] : e.args) {
          w.Key(k);
          w.Int(v);
        }
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
}

Status Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::Invalid("cannot open trace file ", path);
  WriteChromeTrace(out);
  out.flush();
  if (!out.good()) return Status::Invalid("failed writing trace file ", path);
  return Status::OK();
}

}  // namespace pref
