// Process-wide runtime metrics: named counters, gauges, and fixed-bucket
// histograms behind a thread-safe registry.
//
// Design:
//  * Hot-path operations (Counter::Add, Gauge::SetMax, Histogram::Observe)
//    are lock-free relaxed atomics. Registration (GetCounter et al.) takes
//    the registry mutex and allocates; call sites cache the returned
//    reference (`static Counter& c = ...GetCounter("x")`) so steady state
//    performs zero allocation and zero lookups.
//  * Instrument handles are stable for the registry's lifetime: metrics are
//    stored behind unique_ptr, so references never move.
//  * The whole subsystem compiles out: building with PREF_METRICS=0 (CMake
//    option PREF_METRICS=OFF) turns every hot-path operation into an empty
//    inline function, so disabled overhead is a dead branch at most.
//    Registration and Snapshot still work (returning zeros) so callers
//    never need #ifdefs.
//
// Naming convention (see DESIGN.md §6): dot-separated lowercase paths,
// subsystem first — `engine.exchange.bytes`, `pool.queue_depth`,
// `load.copies_written`, `design.configs_enumerated`.

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#ifndef PREF_METRICS
#define PREF_METRICS 1
#endif

namespace pref {

/// Monotonically increasing event count. All methods are thread-safe;
/// Add is one relaxed atomic add. With PREF_METRICS=0 Add is an empty
/// inline no-op and Get always returns 0.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
#if PREF_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value; SetMax maintains a high-water mark via a
/// lock-free CAS loop. All methods are thread-safe (relaxed atomics);
/// with PREF_METRICS=0 the mutators are no-ops and Get returns 0.
class Gauge {
 public:
  void Set(int64_t v) {
#if PREF_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t delta) {
#if PREF_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void SetMax(int64_t v) {
#if PREF_METRICS
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bounds[i];
/// one implicit overflow bucket past the last bound. Bounds are fixed at
/// registration, so Observe is an upper_bound over a small immutable vector
/// plus one relaxed fetch_add — no allocation, no locks.
class Histogram {
 public:
  /// \param bounds strictly increasing bucket upper bounds. Empty selects
  /// DefaultLatencyBounds().
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Exponential 1us .. 100s grid, for latencies observed in seconds.
  static std::vector<double> DefaultLatencyBounds();

  /// Thread-safe: one relaxed fetch_add on the bucket plus a CAS loop on
  /// the running sum's bit pattern (no locks, no allocation). A no-op
  /// with PREF_METRICS=0.
  void Observe(double value) {
#if PREF_METRICS
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    // Atomic double accumulation via CAS on the bit pattern.
    uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
    uint64_t desired;
    do {
      desired = std::bit_cast<uint64_t>(std::bit_cast<double>(expected) + value);
    } while (!sum_bits_.compare_exchange_weak(expected, desired,
                                              std::memory_order_relaxed));
#else
    (void)value;
#endif
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the trailing overflow bucket).
  size_t num_buckets() const { return bounds_.size() + 1; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  /// Estimated q-quantile (q in [0, 1]) assuming observations are spread
  /// uniformly within each bucket: finds the bucket holding the q-th
  /// observation and interpolates linearly between its bounds. Returns 0
  /// with no observations; the overflow bucket reports its lower bound
  /// (the last finite bound — a floor, since its width is unknown).
  /// Reads are relaxed atomics, so concurrent Observes give a
  /// consistent-enough estimate, same as Snapshot().
  double Quantile(double q) const;
  double Sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  void Reset();

 private:
  size_t BucketOf(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> sum_bits_{0};
};

/// One metric's state at Snapshot() time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  double value = 0;    // counter/gauge reading; histogram sum
  uint64_t count = 0;  // histogram observation count
  /// Histograms only: (upper bound, count) per bucket; the overflow bucket
  /// carries bound = +inf.
  std::vector<std::pair<double, uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  /// Process-wide shared registry.
  static MetricsRegistry& Default();

  /// Returns the named instrument, creating it on first use. The reference
  /// stays valid for the registry's lifetime. Counters, gauges, and
  /// histograms live in separate namespaces; don't reuse a name across
  /// kinds (both would show up in Snapshot()).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// \param bounds used only on first registration; empty selects
  /// Histogram::DefaultLatencyBounds().
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {});

  /// Consistent-enough point-in-time view (each value read atomically),
  /// sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}]}}}
  void WriteJson(std::ostream& os) const;

  /// Zeroes every registered instrument (tests and bench reruns).
  void ResetAll();

 private:
  // The maps are guarded; the instruments behind the unique_ptrs are not —
  // they are internally thread-safe (relaxed atomics) and handed out by
  // reference precisely so the hot path never touches mu_. Leaf in the
  // global lock order (common/mutex.h): registration never calls out of
  // this class while holding it.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace pref
