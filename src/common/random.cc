#include "common/random.h"

#include <cassert>
#include <cmath>

namespace pref {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes via SplitMix64 as recommended by the xoshiro authors.
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

namespace {
double Zeta(int64_t n, double theta) {
  double sum = 0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(int64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

int64_t ZipfGenerator::Next(Rng* rng) {
  if (n_ == 1) return 1;
  if (theta_ == 0.0) return rng->Uniform(1, n_);
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  int64_t v = 1 + static_cast<int64_t>(static_cast<double>(n_) *
                                       std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v > n_) v = n_;
  if (v < 1) v = 1;
  return v;
}

}  // namespace pref
