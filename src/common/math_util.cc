#include "common/math_util.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pref {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(exp(a) + exp(b)) without overflow.
double LogAdd(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  if (a < b) std::swap(a, b);
  return a + std::log1p(std::exp(b - a));
}
}  // namespace

StirlingTable::StirlingTable(int max_n) : max_n_(max_n) {
  assert(max_n >= 0);
  log_s_.assign(max_n + 1, {});
  for (int n = 0; n <= max_n; ++n) {
    log_s_[n].assign(n + 1, kNegInf);
  }
  log_s_[0].assign(1, 0.0);  // S(0,0) = 1
  for (int n = 1; n <= max_n; ++n) {
    for (int k = 1; k <= n; ++k) {
      // S(n,k) = k*S(n-1,k) + S(n-1,k-1)
      double via_k =
          (k <= n - 1) ? std::log(static_cast<double>(k)) + log_s_[n - 1][k] : kNegInf;
      double via_k1 = (k - 1 <= n - 1) ? log_s_[n - 1][k - 1] : kNegInf;
      log_s_[n][k] = LogAdd(via_k, via_k1);
    }
  }
}

double StirlingTable::LogStirling2(int n, int k) const {
  assert(n >= 0 && n <= max_n_);
  if (k < 0 || k > n) return kNegInf;
  if (n == 0) return k == 0 ? 0.0 : kNegInf;
  return log_s_[n][k];
}

double LogFactorial(int n) { return std::lgamma(static_cast<double>(n) + 1.0); }

double LogBinomial(int n, int k) {
  if (k < 0 || k > n) return kNegInf;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BellNumber(int n) {
  assert(n >= 0);
  // Bell triangle.
  std::vector<double> prev{1.0};
  for (int i = 1; i <= n; ++i) {
    std::vector<double> cur(i + 1);
    cur[0] = prev.back();
    for (int j = 1; j <= i; ++j) cur[j] = cur[j - 1] + prev[j - 1];
    prev = std::move(cur);
  }
  return prev[0];
}

}  // namespace pref
