// Per-thread logical task tag: the query identity that follows work across
// threads.
//
// The QueryScheduler tags every query it admits with a nonzero id. The
// ThreadPool captures the submitting thread's tag when a task is enqueued
// and re-establishes it (via TaskTagScope) on whichever thread executes the
// task, so a query's morsels, nested fan-outs, and trace spans all observe
// the same tag no matter which worker they land on. Tag 0 means "untagged"
// (single-query callers, tests, benches that bypass the scheduler) and
// keeps every pre-scheduler code path byte-identical in output.
//
// Consumers:
//  * ThreadPool — per-tag task queues dispatched round-robin across tags,
//    so morsels of concurrent queries interleave fairly instead of FIFO
//    head-of-line blocking behind one large query.
//  * Tracer — spans stamp the current tag as a "qid" arg, giving every
//    span a query identity in concurrent traces.

#pragma once

#include <cstdint>

namespace pref {

/// The calling thread's current task tag (0 = untagged).
uint64_t CurrentTaskTag();

/// RAII tag override for the current thread: establishes `tag` on
/// construction and restores the previous tag on destruction. Cheap (one
/// thread-local write each way); safe to nest.
class TaskTagScope {
 public:
  explicit TaskTagScope(uint64_t tag);
  ~TaskTagScope();

  TaskTagScope(const TaskTagScope&) = delete;
  TaskTagScope& operator=(const TaskTagScope&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace pref
