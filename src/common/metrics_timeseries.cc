#include "common/metrics_timeseries.h"

#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"

namespace pref {

MetricsTimeseries::MetricsTimeseries(std::vector<std::string> counters,
                                     std::vector<std::string> gauges,
                                     TimeseriesOptions options,
                                     MetricsRegistry* registry)
    : counter_names_(std::move(counters)),
      gauge_names_(std::move(gauges)),
      options_(options),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Default()),
      prev_counters_(counter_names_.size(), 0) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.resize(options_.capacity);
}

void MetricsTimeseries::Tick(double label) {
  Sample& s = ring_[next_];
  if (count_ == options_.capacity) ++dropped_;
  s.label = label;
  s.counter_deltas.resize(counter_names_.size());
  s.gauge_values.resize(gauge_names_.size());
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    const int64_t now =
        static_cast<int64_t>(registry_->GetCounter(counter_names_[i]).Get());
    s.counter_deltas[i] = now - prev_counters_[i];
    prev_counters_[i] = now;
  }
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    s.gauge_values[i] = registry_->GetGauge(gauge_names_[i]).Get();
  }
  next_ = (next_ + 1) % options_.capacity;
  if (count_ < options_.capacity) ++count_;
}

size_t MetricsTimeseries::size() const { return count_; }

void MetricsTimeseries::WriteJson(std::ostream& os) const {
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("capacity");
  w.UInt(options_.capacity);
  w.Key("dropped");
  w.UInt(dropped_);
  w.Key("counters");
  w.BeginArray();
  for (const std::string& n : counter_names_) w.String(n);
  w.EndArray();
  w.Key("gauges");
  w.BeginArray();
  for (const std::string& n : gauge_names_) w.String(n);
  w.EndArray();
  w.Key("samples");
  w.BeginArray();
  // Oldest-first: when full, the oldest sample sits at next_.
  const size_t start = count_ == options_.capacity ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    const Sample& s = ring_[(start + i) % options_.capacity];
    w.BeginObject();
    w.Key("label");
    w.Double(s.label);
    w.Key("counters");
    w.BeginArray();
    for (int64_t d : s.counter_deltas) w.Int(d);
    w.EndArray();
    w.Key("gauges");
    w.BeginArray();
    for (int64_t v : s.gauge_values) w.Int(v);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

std::string MetricsTimeseries::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace pref
