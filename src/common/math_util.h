// Combinatorics for the Appendix A redundancy estimator and the §4.3 merge
// search-space analysis (Stirling numbers of the second kind, Bell numbers).

#pragma once

#include <cstdint>
#include <vector>

namespace pref {

/// \brief Table of Stirling numbers of the second kind S(n, k) computed in
/// log-space to avoid overflow (S(f, x) appears inside a ratio in the
/// expected-copies formula, so only relative magnitudes matter).
///
/// S(n, k) counts the ways to partition a set of n labeled objects into k
/// non-empty unlabeled subsets. Appendix A uses it to compute
/// P_{f,n}(X = x) = C(n,x) * x! * S(f,x) / n^f.
class StirlingTable {
 public:
  /// Precompute ln S(n, k) for all 0 <= k <= n <= max_n.
  explicit StirlingTable(int max_n);

  /// ln S(n, k); returns -infinity for S == 0 cases.
  double LogStirling2(int n, int k) const;

  int max_n() const { return max_n_; }

 private:
  int max_n_;
  std::vector<std::vector<double>> log_s_;  // log_s_[n][k]
};

/// ln(n!)
double LogFactorial(int n);

/// ln C(n, k)
double LogBinomial(int n, int k);

/// Bell number B(n) as a double (number of set partitions of n elements);
/// used to report the WD merge search-space size (§4.3).
double BellNumber(int n);

}  // namespace pref
