// Baseline partitioning configurations from §5 of the paper:
//  * All Hashed / All Replicated (Figure 11 baselines),
//  * Classical Partitioning CP for TPC-H (co-hash LINEITEM/ORDERS on the
//    join key, replicate the rest) — the manual data-warehousing design,
//  * CP Naive and CP Individual Stars for TPC-DS.

#pragma once

#include "common/result.h"
#include "partition/config.h"
#include "partition/deployment.h"
#include "storage/table.h"

namespace pref {

/// Every table hash-partitioned on its primary key (DL = 0, DR = 0).
Result<PartitioningConfig> MakeAllHashed(const Schema& schema, int num_partitions);

/// Every table replicated (DL = 1, DR = n-1).
Result<PartitioningConfig> MakeAllReplicated(const Schema& schema,
                                             int num_partitions);

/// Classical TPC-H warehouse design: LINEITEM and ORDERS hash co-partitioned
/// on the orderkey, all other tables replicated.
Result<PartitioningConfig> MakeTpchClassical(const Schema& schema,
                                             int num_partitions);

/// CP Naive for TPC-DS: the biggest table (store_sales) co-hashed with its
/// biggest connected table (store_returns) on their composite join key;
/// everything else replicated.
Result<PartitioningConfig> MakeTpcdsClassicalNaive(const Schema& schema,
                                                   int num_partitions);

/// CP Individual Stars for TPC-DS: one configuration per fact table; in
/// each star the fact table is co-hashed with its biggest dimension on the
/// join key and the remaining dimensions of the star are replicated.
/// Dimension tables shared by several stars are duplicated at the cut.
Result<Deployment> MakeTpcdsClassicalStars(const Database& db, int num_partitions);

}  // namespace pref
