// The partitioner: applies a PartitioningConfig to an unpartitioned
// Database D, producing the partitioned database D^P.
//
// Implements Definition 1 of the paper for PREF tables:
//   (1) a tuple r of the referencing table R is placed into every partition
//       P_i(R) for which some s in P_i(S) satisfies the partitioning
//       predicate p(r, s) — duplicating r when partners exist in several
//       partitions of S;
//   (2) tuples without any partitioning partner are assigned round-robin.
// It also materializes the §2.1 auxiliary indexes (dup, hasS) and the §2.3
// partition indexes on every referenced attribute set.

#pragma once

#include <memory>

#include "partition/config.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

/// \brief Partitions `db` according to `config` (which must Finalize()
/// cleanly; PartitionDatabase finalizes it if the caller has not).
///
/// Tables are processed in PREF dependency order. For every PREF predicate,
/// a partition index is built on the referenced table's predicate columns
/// and retained for later bulk loads.
///
/// Each table runs the shared route → append → index phases of
/// partition/load_phases.h on the process-wide ThreadPool; pass
/// `parallel = false` to run every phase on the calling thread. Results are
/// bit-identical either way (partitions, dup/hasS bitmaps, indexes).
Result<std::unique_ptr<PartitionedDatabase>> PartitionDatabase(
    const Database& db, PartitioningConfig config, bool parallel = true);

/// \brief Builds (or rebuilds) a partition index on `columns` of `table`
/// from its current partition contents. Exposed for bulk loading and for
/// the Fig-10 ablation which loads without pre-built indexes.
PartitionIndex* BuildPartitionIndex(PartitionedTable* table,
                                    const std::vector<ColumnId>& columns);

}  // namespace pref
