#include "partition/locality.h"

#include <algorithm>

namespace pref {

std::vector<WeightedEdge> SchemaEdges(const Database& db) {
  std::vector<WeightedEdge> edges;
  for (const auto& fk : db.schema().foreign_keys()) {
    WeightedEdge e;
    e.predicate = db.schema().PredicateOf(fk);
    e.weight = static_cast<double>(std::min(db.table(fk.src_table).num_rows(),
                                            db.table(fk.dst_table).num_rows()));
    edges.push_back(std::move(e));
  }
  return edges;
}

std::vector<WeightedEdge> SchemaEdges(const Database& db,
                                      const PartitioningConfig& config) {
  std::vector<WeightedEdge> edges;
  for (auto& e : SchemaEdges(db)) {
    if (config.Contains(e.predicate.left_table) &&
        config.Contains(e.predicate.right_table)) {
      edges.push_back(std::move(e));
    }
  }
  return edges;
}

bool EdgeIsLocal(const PartitioningConfig& config, const JoinPredicate& edge) {
  if (!config.Contains(edge.left_table) || !config.Contains(edge.right_table)) {
    return false;
  }
  const PartitionSpec& l = config.spec(edge.left_table);
  const PartitionSpec& r = config.spec(edge.right_table);
  if (l.method == PartitionMethod::kReplicated ||
      r.method == PartitionMethod::kReplicated) {
    return true;
  }
  // One side PREF-partitioned by the other on this predicate.
  if (l.method == PartitionMethod::kPref &&
      l.referenced_table == edge.right_table && l.predicate.has_value() &&
      l.predicate->EquivalentTo(edge)) {
    return true;
  }
  if (r.method == PartitionMethod::kPref && r.referenced_table == edge.left_table &&
      r.predicate.has_value() && r.predicate->EquivalentTo(edge.Reversed())) {
    return true;
  }
  // Co-hash on the join key.
  if (l.method == PartitionMethod::kHash && r.method == PartitionMethod::kHash &&
      l.num_partitions == r.num_partitions && l.attributes == edge.left_columns &&
      r.attributes == edge.right_columns) {
    return true;
  }
  return false;
}

double DataLocality(const PartitioningConfig& config,
                    const std::vector<WeightedEdge>& edges) {
  double covered = 0, total = 0;
  for (const auto& e : edges) {
    total += e.weight;
    if (EdgeIsLocal(config, e.predicate)) covered += e.weight;
  }
  return total == 0 ? 0.0 : covered / total;
}

LocalityReport EvaluateConfig(const PartitioningConfig& config,
                              const std::vector<WeightedEdge>& edges,
                              const PartitionedDatabase& pdb) {
  LocalityReport report;
  for (const auto& e : edges) {
    report.total_weight += e.weight;
    if (EdgeIsLocal(config, e.predicate)) report.covered_weight += e.weight;
  }
  report.data_locality =
      report.total_weight == 0 ? 0.0 : report.covered_weight / report.total_weight;
  report.data_redundancy = pdb.DataRedundancy();
  return report;
}

}  // namespace pref
