// PartitioningConfig: the paper's "partitioning configuration" — one
// partitioning scheme per table (§3.1). Validates PREF reference chains
// (acyclic, consistent partition counts) and resolves each PREF table's
// seed table (Definition 1).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/partition.h"

namespace pref {

/// \brief Maps every table of a schema to a PartitionSpec.
class PartitioningConfig {
 public:
  PartitioningConfig(const Schema* schema, int num_partitions)
      : schema_(schema), num_partitions_(num_partitions) {}

  int num_partitions() const { return num_partitions_; }
  const Schema& schema() const { return *schema_; }

  /// HASH-partition `table` on the named columns.
  Status AddHash(const std::string& table, const std::vector<std::string>& columns);
  /// HASH-partition `table` on its primary key.
  Status AddHashOnPrimaryKey(const std::string& table);
  /// RANGE-partition `table` on `column` with ascending upper bounds
  /// (exactly num_partitions - 1 of them; the last partition is unbounded).
  Status AddRange(const std::string& table, const std::string& column,
                  std::vector<Value> bounds);
  /// Replicate `table` to all nodes.
  Status AddReplicated(const std::string& table);
  /// ROUND-ROBIN-partition `table`.
  Status AddRoundRobin(const std::string& table);

  /// PREF-partition `table` by `referenced` with the given equi-join
  /// partitioning predicate (column lists are positional pairs:
  /// table.columns[i] = referenced.ref_columns[i]).
  Status AddPref(const std::string& table, const std::vector<std::string>& columns,
                 const std::string& referenced,
                 const std::vector<std::string>& ref_columns);

  /// Assigns an already-built PartitionSpec to `table`. The escape hatch
  /// for carrying a serving table's current spec verbatim into a new
  /// config (design/wd_design.h CompleteServingConfig); the typed Add*
  /// helpers above cover the common cases. The spec is validated by
  /// Finalize() like any other.
  Status AddSpec(const std::string& table, PartitionSpec spec);

  /// REF-partition (classic reference partitioning [Eadon et al. 2008]):
  /// co-partition `table` by the destination of its *outgoing* foreign key
  /// `fk_name`. Implemented as the PREF special case whose predicate is the
  /// referential constraint.
  Status AddRefByForeignKey(const std::string& fk_name);

  /// True if a spec was assigned to `table`.
  bool Contains(TableId table) const { return specs_.count(table) > 0; }
  const PartitionSpec& spec(TableId table) const { return specs_.at(table); }
  const std::map<TableId, PartitionSpec>& specs() const { return specs_; }

  /// Validates the configuration and finalizes PREF metadata:
  ///  * every PREF-referenced table has a spec,
  ///  * PREF reference edges are acyclic,
  ///  * partition counts agree along PREF chains,
  ///  * seed_table / seed_attributes are resolved for every PREF spec.
  Status Finalize();

  /// Tables ordered so that every PREF-referenced table precedes its
  /// referencing tables. Only valid after Finalize().
  const std::vector<TableId>& LoadOrder() const { return load_order_; }

  bool finalized() const { return finalized_; }

  std::string ToString() const;

 private:
  const Schema* schema_;
  int num_partitions_;
  std::map<TableId, PartitionSpec> specs_;
  std::vector<TableId> load_order_;
  bool finalized_ = false;
};

}  // namespace pref
