// The shared three-phase load pipeline: route → append → index.
//
// Both the §2.3 bulk loader and the initial PartitionDatabase pass place
// tuples with exactly the same three steps, so the skeleton lives here once:
//
//   1. Route  — compute the ordered partition list of every input row.
//      Read-only against the database; parallel over row chunks with
//      per-chunk probe/lookup counters (no shared counters). Round-robin
//      decisions (RR tables, PREF orphans) are replayed sequentially in row
//      order so placements match a serial pass exactly.
//   2. Append — materialize the copies. Parallel over *target partitions*:
//      each task exclusively owns one partition's RowBlock and dup/hasS
//      bitmaps, so the data path takes no locks, and appends in input-row
//      order — matching the serial loop byte for byte.
//   3. Index  — maintain the partition indexes registered on the loaded
//      table (so later PREF loads that reference it stay correct). Parallel
//      over indexes: each task exclusively owns one index and inserts in
//      row order.
//
// Determinism: every phase's output is a pure function of the input rows
// and the current database state — independent of thread count, chunk
// boundaries, and scheduling order. A `parallel = false` (or PREF_THREADS=1)
// run produces bit-identical partitions, bitmaps, and indexes.

#pragma once

#include <cstdint>
#include <vector>

#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

/// Phase-1 output: where every input row goes, plus routing statistics.
struct RoutedPlacements {
  /// placements[r] = ordered list of target partitions for input row r.
  /// For PREF tables the first entry is the original (dup = 0), the rest
  /// are duplicates (dup = 1); every other method places exactly once
  /// (REPLICATED: once per partition, all originals).
  std::vector<std::vector<int>> placements;
  /// PREF only (empty otherwise): has_partner[r] != 0 iff row r has at
  /// least one partitioning partner in the referenced table (the hasS bit).
  std::vector<uint8_t> has_partner;
  /// Partition-index probes performed while routing (PREF with index).
  size_t index_lookups = 0;
  /// Rows scanned by the naive no-index PREF path (Fig-10 ablation).
  size_t scan_probes = 0;
};

/// Phase 1 (route): computes the placements of `rows` for `table` under its
/// PartitionSpec. Reads (but does not modify) other tables of `pdb` for
/// PREF routing; a missing partition index on the referenced table is built
/// first (serially) when `use_partition_index` is set, otherwise routing
/// scans the referenced partitions. Parallel over row chunks on
/// ThreadPool::Default() when `parallel`.
Result<RoutedPlacements> RoutePlacements(PartitionedDatabase* pdb,
                                         PartitionedTable* table,
                                         const RowBlock& rows,
                                         bool use_partition_index, bool parallel);

/// Phase 2 (append): materializes `route.placements` into the partitions of
/// `table`, maintaining dup/hasS bitmaps for PREF tables. Parallel over
/// target partitions (each task owns one partition exclusively). Returns
/// the number of physical copies written (>= rows for PREF/REPLICATED).
size_t ApplyPlacements(PartitionedTable* table, const RowBlock& rows,
                       const RoutedPlacements& route, bool parallel);

/// Phase 3 (index): inserts the routed rows into every partition index
/// registered on `table`. Parallel over indexes (each task owns one index
/// exclusively). No-op when the table has no registered indexes.
void MaintainPartitionIndexes(PartitionedTable* table, const RowBlock& rows,
                              const RoutedPlacements& route, bool parallel);

}  // namespace pref
