#include "partition/migration.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/metric_names.h"
#include "partition/load_phases.h"

namespace pref {

namespace {

const char* kCategory = metric_names::kCategoryMigration;

/// Whether a PREF route against `ref` may take the partition-index path
/// without mutating `ref`. RoutePlacements builds a missing index on the
/// referenced table, which is only safe when `ref` is private to the
/// migration (not visible to any serving version whose queries read
/// indexes through the rewriter); otherwise the index must already exist
/// (read-only reuse).
bool IndexPathSafe(const PartitionedTable& ref, const std::vector<ColumnId>& cols,
                   bool ref_private) {
  return ref_private || ref.FindPartitionIndex(cols) != nullptr;
}

/// True when the two specs share every parameter except the partition
/// count (the split/merge shape).
bool SameParams(const PartitionSpec& a, const PartitionSpec& b) {
  if (a.method != b.method) return false;
  switch (a.method) {
    case PartitionMethod::kHash:
    case PartitionMethod::kRange:
      return a.attributes == b.attributes;
    case PartitionMethod::kPref:
      return a.referenced_table == b.referenced_table &&
             a.predicate.has_value() && b.predicate.has_value() &&
             a.predicate->EquivalentTo(*b.predicate);
    default:
      return true;  // replicated / round-robin carry no parameters
  }
}

MigrationStepKind Classify(const PartitionSpec* old_spec,
                           const PartitionSpec& new_spec, bool ancestor_moved) {
  if (old_spec == nullptr) return MigrationStepKind::kMove;
  if (SpecsEquivalent(*old_spec, new_spec)) {
    // Hash/range placements are value-deterministic and round-robin is
    // order-deterministic, so an equivalent spec means identical
    // placements — except for PREF, whose placement follows the referenced
    // table's *data*: a moved ancestor re-routes this table too.
    return ancestor_moved ? MigrationStepKind::kRecolocate
                          : MigrationStepKind::kKeep;
  }
  if (SameParams(*old_spec, new_spec) &&
      old_spec->num_partitions != new_spec.num_partitions) {
    return new_spec.num_partitions > old_spec->num_partitions
               ? MigrationStepKind::kSplit
               : MigrationStepKind::kMerge;
  }
  return MigrationStepKind::kMove;
}

/// Replays the routing phase for `spec` over `rows` as if the table were
/// loaded from scratch (fresh empty target, so round-robin counters start
/// at zero exactly like the initial PartitionDatabase pass). `context`
/// supplies the referenced table for PREF routing and is only read:
/// `ref_private` gates the index path per IndexPathSafe.
Result<std::vector<std::vector<int>>> ReplayPlacements(
    PartitionedDatabase* context, const TableDef* def, const PartitionSpec& spec,
    const RowBlock& rows, bool ref_private, bool parallel) {
  PartitionedTable tmp(def, spec);
  bool use_index = true;
  if (spec.method == PartitionMethod::kPref) {
    const PartitionedTable* ref = context->GetTable(spec.referenced_table);
    if (ref == nullptr) {
      return Status::Invalid("PREF-referenced table of '", def->name,
                             "' missing from migration context");
    }
    use_index = IndexPathSafe(*ref, spec.predicate->right_columns, ref_private);
  }
  PREF_ASSIGN_OR_RAISE(
      RoutedPlacements route,
      RoutePlacements(context, &tmp, rows, use_index, parallel));
  return std::move(route.placements);
}

/// Fills one step's movement accounting from its old and new per-row
/// placements. `old_placements` is empty for a table that did not exist
/// before (every copy then counts as moved).
void AccountStep(const RowBlock& rows,
                 const std::vector<std::vector<int>>& old_placements,
                 const std::vector<std::vector<int>>& new_placements,
                 int max_partitions, MigrationStep* step) {
  static const std::vector<int> kNowhere;
  step->flows.resize(static_cast<size_t>(max_partitions));
  for (int p = 0; p < max_partitions; ++p) {
    step->flows[static_cast<size_t>(p)].partition = p;
  }
  std::vector<size_t> bytes(rows.num_rows());
  rows.RowByteSizes(bytes);
  std::vector<int> old_sorted, new_sorted;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    const std::vector<int>& o =
        old_placements.empty() ? kNowhere : old_placements[r];
    const std::vector<int>& n = new_placements[r];
    old_sorted.assign(o.begin(), o.end());
    new_sorted.assign(n.begin(), n.end());
    std::sort(old_sorted.begin(), old_sorted.end());
    std::sort(new_sorted.begin(), new_sorted.end());
    for (int p : old_sorted) ++step->flows[static_cast<size_t>(p)].rows_before;
    for (int p : new_sorted) ++step->flows[static_cast<size_t>(p)].rows_after;
    step->reload_copies += n.size();
    if (old_sorted != new_sorted) ++step->moved_rows;
    // Two-pointer set walk: copies shipped in (new \ old) and dropped
    // (old \ new), charged per partition.
    size_t i = 0, j = 0;
    while (i < old_sorted.size() || j < new_sorted.size()) {
      if (j == new_sorted.size() ||
          (i < old_sorted.size() && old_sorted[i] < new_sorted[j])) {
        ++step->flows[static_cast<size_t>(old_sorted[i])].rows_out;
        ++i;
      } else if (i == old_sorted.size() || new_sorted[j] < old_sorted[i]) {
        ++step->flows[static_cast<size_t>(new_sorted[j])].rows_in;
        ++step->moved_copies;
        step->moved_bytes += bytes[r];
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
}

/// Union-find over table ids, used for the epoch grouping.
class UnionFind {
 public:
  void Add(TableId id) { parent_.emplace(id, id); }
  bool Contains(TableId id) const { return parent_.count(id) > 0; }
  TableId Find(TableId id) {
    TableId root = id;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[id] != root) {
      TableId next = parent_[id];
      parent_[id] = root;
      id = next;
    }
    return root;
  }
  void Unite(TableId a, TableId b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<TableId, TableId> parent_;
};

}  // namespace

const char* MigrationStepKindName(MigrationStepKind k) {
  switch (k) {
    case MigrationStepKind::kKeep:
      return "KEEP";
    case MigrationStepKind::kMove:
      return "MOVE";
    case MigrationStepKind::kSplit:
      return "SPLIT";
    case MigrationStepKind::kMerge:
      return "MERGE";
    case MigrationStepKind::kRecolocate:
      return "RECOLOCATE";
  }
  return "UNKNOWN";
}

std::string MigrationPlan::ToString() const {
  std::ostringstream ss;
  ss << "migration plan: " << tables_moved << " moved, " << tables_kept
     << " kept, " << num_epochs << " epochs, " << moved_copies << "/"
     << reload_copies << " copies shipped vs full reload\n";
  for (const MigrationStep& s : steps) {
    ss << "  " << s.table_name << ": " << MigrationStepKindName(s.kind);
    if (s.kind != MigrationStepKind::kKeep) {
      ss << " epoch " << s.epoch << ", " << s.moved_rows << " rows ("
         << s.moved_copies << " copies, " << s.moved_bytes << " bytes)";
    }
    ss << "\n";
  }
  return ss.str();
}

Result<MigrationPlan> PlanMigration(const Database& db,
                                    const PartitionedDatabase& current,
                                    const PartitioningConfig& new_config,
                                    const MigrationOptions& options) {
  TraceSpan span(metric_names::kSpanPlanMigration, kCategory);
  static Counter& plans_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationPlans);
  if (!new_config.finalized()) {
    return Status::Invalid("migration target config must be finalized");
  }
  if (&current.source() != &db) {
    return Status::Invalid("serving database was built from a different source");
  }
  for (const PartitionedTable* t : current.tables()) {
    if (!new_config.Contains(t->id())) {
      return Status::Invalid("migration target config drops table '", t->name(),
                             "' still being served (complete the design with "
                             "CompleteServingConfig)");
    }
  }

  MigrationPlan plan;
  std::map<TableId, MigrationStepKind> kinds;
  // The current database is only *read* during planning: every
  // RoutePlacements call either reuses an existing partition index or takes
  // the scan path (IndexPathSafe), so the cast never enables mutation of
  // serving-shared state.
  auto* cur = const_cast<PartitionedDatabase*>(&current);
  // Staging oracle: unchanged tables shared in, changed tables materialized
  // under their new spec so downstream PREF routing sees the partner
  // placements it will actually face. Discarded when planning finishes.
  PartitionedDatabase oracle(&db);

  for (TableId id : new_config.LoadOrder()) {
    const PartitionSpec& new_spec = new_config.spec(id);
    const PartitionedTable* old_table = current.GetTable(id);
    const PartitionSpec* old_spec =
        old_table != nullptr ? &old_table->spec() : nullptr;
    const bool ancestor_moved =
        new_spec.method == PartitionMethod::kPref &&
        kinds.count(new_spec.referenced_table) > 0 &&
        kinds[new_spec.referenced_table] != MigrationStepKind::kKeep;
    const MigrationStepKind kind = Classify(old_spec, new_spec, ancestor_moved);
    kinds[id] = kind;

    MigrationStep step;
    step.table = id;
    step.table_name = db.schema().table(id).name;
    step.kind = kind;
    if (old_spec != nullptr) step.old_spec = *old_spec;
    step.new_spec = new_spec;

    const Table& src = db.table(id);
    if (kind == MigrationStepKind::kKeep) {
      PREF_ASSIGN_OR_RAISE(PartitionedTable * shared,
                           oracle.ShareTable(current.TableHandle(id)));
      step.reload_copies = shared->TotalRows();
      plan.reload_copies += step.reload_copies;
      ++plan.tables_kept;
    } else {
      std::vector<std::vector<int>> old_placements;
      if (old_spec != nullptr) {
        PREF_ASSIGN_OR_RAISE(
            old_placements,
            ReplayPlacements(cur, &db.schema().table(id), *old_spec, src.data(),
                             /*ref_private=*/false, options.parallel));
      }
      PREF_ASSIGN_OR_RAISE(PartitionedTable * out,
                           oracle.AddTable(id, new_spec));
      bool use_index = true;
      if (new_spec.method == PartitionMethod::kPref) {
        const PartitionedTable* ref = oracle.GetTable(new_spec.referenced_table);
        if (ref == nullptr) {
          return Status::Invalid("PREF-referenced table of '", step.table_name,
                                 "' missing from migration oracle");
        }
        const bool ref_private =
            kinds[new_spec.referenced_table] != MigrationStepKind::kKeep;
        use_index =
            IndexPathSafe(*ref, new_spec.predicate->right_columns, ref_private);
      }
      PREF_ASSIGN_OR_RAISE(
          RoutedPlacements route,
          RoutePlacements(&oracle, out, src.data(), use_index, options.parallel));
      ApplyPlacements(out, src.data(), route, options.parallel);
      const int max_partitions =
          std::max(old_spec != nullptr ? old_spec->num_partitions : 0,
                   new_spec.num_partitions);
      AccountStep(src.data(), old_placements, route.placements, max_partitions,
                  &step);
      plan.moved_rows += step.moved_rows;
      plan.moved_copies += step.moved_copies;
      plan.moved_bytes += step.moved_bytes;
      plan.reload_copies += step.reload_copies;
      ++plan.tables_moved;
    }
    plan.steps.push_back(std::move(step));
  }

  // Epoch grouping: changed tables joined by a PREF edge — under the old
  // *or* the new config — must publish together, or some intermediate
  // version would pair a PREF placement with referenced data it was not
  // computed against (see the header). Union-find over the changed tables,
  // then dense epoch ids in load order.
  UnionFind uf;
  for (const MigrationStep& s : plan.steps) {
    if (s.kind != MigrationStepKind::kKeep) uf.Add(s.table);
  }
  for (const MigrationStep& s : plan.steps) {
    if (s.kind == MigrationStepKind::kKeep) continue;
    if (s.new_spec.method == PartitionMethod::kPref &&
        uf.Contains(s.new_spec.referenced_table)) {
      uf.Unite(s.table, s.new_spec.referenced_table);
    }
    if (s.old_spec.method == PartitionMethod::kPref &&
        uf.Contains(s.old_spec.referenced_table)) {
      uf.Unite(s.table, s.old_spec.referenced_table);
    }
  }
  std::map<TableId, int> epoch_of_root;
  for (MigrationStep& s : plan.steps) {
    if (s.kind == MigrationStepKind::kKeep) continue;
    const TableId root = uf.Find(s.table);
    auto it = epoch_of_root.find(root);
    if (it == epoch_of_root.end()) {
      it = epoch_of_root.emplace(root, plan.num_epochs++).first;
    }
    s.epoch = it->second;
  }

  plans_ctr.Add(1);
  span.AddArg("tables_moved", static_cast<int64_t>(plan.tables_moved));
  span.AddArg("moved_rows", static_cast<int64_t>(plan.moved_rows));
  span.AddArg("epochs", static_cast<int64_t>(plan.num_epochs));
  return plan;
}

Status VerifyColocation(const Database& db, const PartitionedDatabase& pdb) {
  TraceSpan span(metric_names::kSpanVerifyColocation, kCategory);
  using Key = PartitionIndex::Key;
  struct KeyEq {
    bool operator()(const Key& a, const Key& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
  };
  using KeySet = std::unordered_set<Key, PartitionIndex::KeyHasher, KeyEq>;

  for (const PartitionedTable* t : pdb.tables()) {
    const Table& src = db.table(t->id());
    if (t->DistinctRows() != src.num_rows()) {
      return Status::Internal("table '", t->name(), "' holds ",
                              t->DistinctRows(), " distinct rows, source has ",
                              src.num_rows());
    }
    if (t->spec().method != PartitionMethod::kPref) continue;
    const JoinPredicate& pred = *t->spec().predicate;
    const PartitionedTable* ref = pdb.GetTable(t->spec().referenced_table);
    if (ref == nullptr) {
      return Status::Internal("PREF-referenced table of '", t->name(),
                              "' missing");
    }
    // Per-partition key sets of the referenced side, plus their union for
    // the orphan check. Lookup-only (never iterated), so unordered is fine.
    std::vector<KeySet> ref_keys(static_cast<size_t>(ref->num_partitions()));
    KeySet all_keys;
    for (int p = 0; p < ref->num_partitions(); ++p) {
      const RowBlock& rows = ref->partition(p).rows;
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        Key key;
        key.reserve(pred.right_columns.size());
        for (ColumnId c : pred.right_columns) {
          key.push_back(rows.column(c).GetValue(r));
        }
        ref_keys[static_cast<size_t>(p)].insert(key);
        all_keys.insert(std::move(key));
      }
    }
    for (int p = 0; p < t->num_partitions(); ++p) {
      const Partition& part = t->partition(p);
      if (part.dup.size() != part.rows.num_rows() ||
          part.has_partner.size() != part.rows.num_rows()) {
        return Status::Internal("table '", t->name(), "' partition ", p,
                                " has inconsistent PREF bitmaps");
      }
      for (size_t r = 0; r < part.rows.num_rows(); ++r) {
        Key key;
        key.reserve(pred.left_columns.size());
        for (ColumnId c : pred.left_columns) {
          key.push_back(part.rows.column(c).GetValue(r));
        }
        const bool partner_here =
            ref_keys[static_cast<size_t>(p)].count(key) > 0;
        if (part.has_partner.Get(r)) {
          if (!partner_here) {
            return Status::Internal(
                "co-location violated: row of '", t->name(), "' in partition ",
                p, " has no partitioning partner there");
          }
        } else if (all_keys.count(key) > 0) {
          return Status::Internal("row of '", t->name(), "' in partition ", p,
                                  " is flagged partnerless but a partner "
                                  "exists in the referenced table");
        }
      }
    }
  }
  return Status::OK();
}

MigrationExecutor::MigrationExecutor(const Database& db,
                                     ServingDatabase* serving,
                                     MigrationPlan plan,
                                     MigrationOptions options)
    : db_(db),
      serving_(serving),
      plan_(std::move(plan)),
      options_(options),
      base_(serving->Acquire().pdb),
      pool_(&ThreadPool::Default()) {}

MigrationExecutor::~MigrationExecutor() {
  {
    MutexLock lock(&mu_);
    if (!started_) return;
  }
  WaitTerminal();
}

void MigrationExecutor::Start(ThreadPool* pool) {
  {
    MutexLock lock(&mu_);
    PREF_CHECK_OK(started_ ? Status::Invalid("migration already started")
                           : Status::OK());
    started_ = true;
    if (pool != nullptr) pool_ = pool;
  }
  // One fire-and-forget task; it inherits the submitting thread's tag, so
  // its morsels form their own round-robin class against tagged queries.
  pool_->Post([this] {
    Status s = RunStarted();
    // lint:status-ok: the terminal status is stored in final_status_ under
    // mu_ by RunStarted itself; Wait()/status() report it to the caller.
    (void)s;
  });
}

Status MigrationExecutor::Run() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::Invalid("migration already started");
    started_ = true;
  }
  return RunStarted();
}

Status MigrationExecutor::RunStarted() {
  {
    MutexLock lock(&mu_);
    state_ = State::kRunning;
  }
  static Counter& completed_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationCompleted);
  static Counter& cancelled_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationCancelled);
  static Counter& failed_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationFailed);
  Status status = Execute();
  {
    MutexLock lock(&mu_);
    final_status_ = status;
    state_ = status.ok() ? State::kDone
             : status.IsCancelled() ? State::kCancelled
                                    : State::kFailed;
    cv_.NotifyAll();
  }
  if (status.ok()) {
    completed_ctr.Add(1);
  } else if (status.IsCancelled()) {
    cancelled_ctr.Add(1);
  } else {
    failed_ctr.Add(1);
  }
  return status;
}

Status MigrationExecutor::Execute() {
  TraceSpan span(metric_names::kSpanMigration, kCategory);
  static Counter& tables_moved_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationTablesMoved);
  static Counter& tables_kept_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationTablesKept);
  static Counter& rows_moved_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationRowsMoved);
  static Counter& bytes_moved_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationBytesMoved);
  static Counter& epochs_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kMigrationEpochsPublished);

  if (plan_.Empty()) return Status::OK();

  // Staging accumulates the new state: unchanged tables shared from the
  // base version (pointer-equal storage, zero movement), changed tables
  // rebuilt epoch by epoch. Published versions share staging's tables, so
  // a table is never copied no matter how many versions reference it.
  PartitionedDatabase staging(&db_);
  for (const MigrationStep& step : plan_.steps) {
    if (step.kind != MigrationStepKind::kKeep) continue;
    PREF_ASSIGN_OR_RAISE(PartitionedTable * shared,
                         staging.ShareTable(base_->TableHandle(step.table)));
    (void)shared;
  }

  for (int epoch = 0; epoch < plan_.num_epochs; ++epoch) {
    TraceSpan epoch_span(metric_names::kSpanMigrationEpoch, kCategory);
    epoch_span.AddArg("epoch", epoch);
    for (MigrationStep& step : plan_.steps) {
      if (step.epoch != epoch) continue;
      if (cancel_.load(std::memory_order_relaxed)) {
        return Status::Cancelled("migration cancelled after ",
                                 epochs_published(), " published epochs");
      }
      PREF_RETURN_NOT_OK(RebuildTable(&step, &staging));
    }
    // Assemble the version this epoch publishes: new state for epochs
    // <= `epoch`, base state for everything else. Pure pointer shares.
    auto version = std::make_shared<PartitionedDatabase>(&db_);
    for (const MigrationStep& step : plan_.steps) {
      const bool rebuilt =
          step.kind != MigrationStepKind::kKeep && step.epoch <= epoch;
      std::shared_ptr<PartitionedTable> handle =
          rebuilt ? staging.TableHandle(step.table)
                  : base_->TableHandle(step.table);
      PREF_ASSIGN_OR_RAISE(PartitionedTable * shared,
                           version->ShareTable(std::move(handle)));
      (void)shared;
    }
    if (options_.verify_colocation) {
      PREF_RETURN_NOT_OK(VerifyColocation(db_, *version));
    }
    if (cancel_.load(std::memory_order_relaxed)) {
      // The epoch is staged but not published; serving stays on the last
      // consistent version.
      return Status::Cancelled("migration cancelled before publishing epoch ",
                               epoch);
    }
    const uint64_t v = serving_->Publish(std::move(version));
    {
      MutexLock lock(&mu_);
      epochs_published_ = epoch + 1;
      last_version_ = v;
    }
    epochs_ctr.Add(1);
  }

  tables_moved_ctr.Add(plan_.tables_moved);
  tables_kept_ctr.Add(plan_.tables_kept);
  rows_moved_ctr.Add(plan_.moved_rows);
  bytes_moved_ctr.Add(plan_.moved_bytes);
  span.AddArg("moved_rows", static_cast<int64_t>(plan_.moved_rows));
  span.AddArg("epochs", static_cast<int64_t>(plan_.num_epochs));
  return Status::OK();
}

Status MigrationExecutor::RebuildTable(MigrationStep* step,
                                       PartitionedDatabase* staging) {
  TraceSpan span(metric_names::kSpanMigrationTable, kCategory);
  const Table& src = db_.table(step->table);
  span.AddArg("rows", static_cast<int64_t>(src.num_rows()));
  PREF_ASSIGN_OR_RAISE(PartitionedTable * out,
                       staging->AddTable(step->table, step->new_spec));
  bool use_index = true;
  if (step->new_spec.method == PartitionMethod::kPref) {
    const PartitionedTable* ref =
        staging->GetTable(step->new_spec.referenced_table);
    if (ref == nullptr) {
      return Status::Invalid("PREF-referenced table of '", step->table_name,
                             "' missing from staging (epoch grouping bug)");
    }
    // A referenced table being rebuilt this migration sits unpublished in
    // staging (private until its epoch's Publish — and same-epoch by the
    // PREF grouping), so building an index on it is safe; a kept table is
    // shared with serving and only an existing index may be used.
    const bool ref_private = !staging->TableShared(ref->id());
    use_index =
        IndexPathSafe(*ref, step->new_spec.predicate->right_columns, ref_private);
  }
  // The exact route → append → index phases of the initial load: rebuilt
  // state is bit-identical to a from-scratch PartitionDatabase() under the
  // new config (fresh empty target, round-robin replay from zero).
  RoutedPlacements route;
  PREF_ASSIGN_OR_RAISE(route, RoutePlacements(staging, out, src.data(),
                                              use_index, options_.parallel));
  step->rebuilt_copies = ApplyPlacements(out, src.data(), route,
                                         options_.parallel);
  MaintainPartitionIndexes(out, src.data(), route, options_.parallel);
  return Status::OK();
}

void MigrationExecutor::WaitTerminal() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (state_ == State::kDone || state_ == State::kCancelled ||
          state_ == State::kFailed) {
        return;
      }
    }
    // Lend this thread to the pool: on a 1-lane configuration this is what
    // actually runs the posted migration task.
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(&mu_);
    if (state_ == State::kDone || state_ == State::kCancelled ||
        state_ == State::kFailed) {
      return;
    }
    cv_.Wait(&lock);
  }
}

Status MigrationExecutor::Wait() {
  {
    MutexLock lock(&mu_);
    if (!started_) return Status::Invalid("migration not started");
  }
  WaitTerminal();
  MutexLock lock(&mu_);
  return final_status_;
}

bool MigrationExecutor::Done() const {
  MutexLock lock(&mu_);
  return state_ == State::kDone || state_ == State::kCancelled ||
         state_ == State::kFailed;
}

MigrationExecutor::State MigrationExecutor::state() const {
  MutexLock lock(&mu_);
  return state_;
}

int MigrationExecutor::epochs_published() const {
  MutexLock lock(&mu_);
  return epochs_published_;
}

uint64_t MigrationExecutor::last_published_version() const {
  MutexLock lock(&mu_);
  return last_version_;
}

}  // namespace pref
