// Online migration (DESIGN.md §12): act on workload drift by moving the
// live deployment from its current partitioning to a new one with the
// minimum data movement, while the QueryScheduler keeps serving.
//
// Two halves, deliberately decoupled:
//
//  * MigrationPlanner (PlanMigration) — diffs the serving database's
//    current specs against a new PartitioningConfig into a MigrationPlan:
//    one step per table (keep / move / split / merge / recolocate), exact
//    moved-rows / moved-copies / moved-bytes accounting, per-partition
//    in/out flows, and the *epoch* grouping that keeps every published
//    intermediate version PREF-consistent. The planner replays the real
//    routing phases (partition/load_phases.h) against the current storage
//    and a private staging copy of the changed tables, so its numbers are
//    measurements, not estimates — tests assert the executor moves exactly
//    what the plan says.
//
//  * MigrationExecutor — applies the plan against a live ServingDatabase
//    in a background pool task. Unchanged tables are carried into every
//    new version by shared ownership (PartitionedDatabase::ShareTable —
//    zero bytes copied, pointer-equal storage); changed tables are rebuilt
//    through the same route → append → index phases the initial load uses,
//    so the rebuilt state is bit-identical to a from-scratch
//    PartitionDatabase(new_config) run. After each epoch the executor
//    publishes a fresh version (ServingDatabase::Publish — the brief swap
//    barrier); queries pin whichever version was current when they
//    started, so results and ExecStats of queries that do not touch a
//    migrating table are unaffected.
//
// Epochs. PREF placement is *data-dependent*: a PREF table's rows live
// wherever their partitioning partners happen to be in the referenced
// table, so a version that mixed a PREF table's old placement with a moved
// referenced table would let the rewriter plan a "local" join over rows
// that are no longer co-located — wrong results, not just slow ones. The
// planner therefore unions changed tables connected by a PREF edge (in the
// old *or* the new config) into one epoch, published atomically. Hash /
// range / round-robin / replicated placements are value- or
// order-deterministic and never force grouping. A corollary: a table whose
// spec is textually unchanged but whose transitive PREF-referenced chain
// moved must itself be rebuilt (kRecolocate) — its rows re-route to follow
// their partners.
//
// Throttling. The executor runs as one tagged background task on the
// shared ThreadPool; every morsel it fans out carries that tag, so the
// pool's round-robin tag dispatch interleaves migration work fairly with
// concurrent queries' morsels instead of letting either starve the other.
// Cancellation is cooperative (checked between tables and before each
// publish): a cancelled migration stops after the last completed epoch,
// leaving the deployment on a consistent published version.
//
// Thread safety: PlanMigration is read-only against the current database
// (it never builds partition indexes on serving-shared tables — routing
// falls back to the scan path when an index is missing). MigrationExecutor
// methods are thread-safe; Start() may overlap concurrent query execution
// against the same ServingDatabase.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"  // full type: mu_'s lock-order annotation
                                 // names pool_->pool_mu()
#include "partition/config.h"
#include "partition/deployment.h"
#include "storage/partition.h"

namespace pref {


/// What happens to one table during a migration.
enum class MigrationStepKind : uint8_t {
  /// Spec unchanged and no transitive PREF-referenced table moved: the
  /// storage is carried into every new version by shared ownership.
  kKeep,
  /// Partitioning scheme changed (method, attributes, predicate or
  /// referenced table): full re-route under the new spec.
  kMove,
  /// Same scheme, more partitions: rows fan out to the new nodes.
  kSplit,
  /// Same scheme, fewer partitions: rows collapse onto the survivors.
  kMerge,
  /// Spec textually unchanged, but a transitive PREF-referenced table
  /// moved — PREF placement follows the partners, so the rows re-route.
  kRecolocate,
};

const char* MigrationStepKindName(MigrationStepKind k);

/// Per-partition movement of one step (the step's flow matrix diagonal-
/// complement): how many physical copies enter and leave each partition.
struct PartitionFlow {
  int partition = 0;
  /// Physical copies on this partition before / after the step.
  size_t rows_before = 0;
  size_t rows_after = 0;
  /// Copies shipped to this partition that were not here before.
  size_t rows_in = 0;
  /// Copies here before that the new placement drops.
  size_t rows_out = 0;
};

/// One table's migration step. Steps appear in the new config's load order
/// (every PREF-referenced table before its referencing tables).
struct MigrationStep {
  TableId table = kInvalidTableId;
  std::string table_name;
  MigrationStepKind kind = MigrationStepKind::kKeep;
  /// Scheme under the current serving version (method kNone for a table
  /// that did not exist before).
  PartitionSpec old_spec;
  PartitionSpec new_spec;
  /// Publish group (0-based, dense, ascending in load order); -1 for kKeep
  /// steps, which belong to every version.
  int epoch = -1;
  /// Source rows whose partition *set* changed (the paper-level measure of
  /// movement: a row whose placement is unchanged costs nothing on the
  /// simulated network, however the rebuild is implemented).
  size_t moved_rows = 0;
  /// Physical copies shipped: sum over rows of |new partitions \ old|.
  size_t moved_copies = 0;
  /// Payload bytes of those shipped copies.
  size_t moved_bytes = 0;
  /// Copies a from-scratch load of this table under the new spec would
  /// ship (the full-reload baseline this step is measured against).
  size_t reload_copies = 0;
  /// Filled by the executor: physical copies actually written while
  /// rebuilding. Always equals reload_copies (the rebuild is the same
  /// deterministic load); tests assert it to pin planner fidelity.
  size_t rebuilt_copies = 0;
  /// Per-partition in/out flows (empty for kKeep).
  std::vector<PartitionFlow> flows;
};

/// \brief The full diff between the serving partitioning and a target
/// configuration. Produced by PlanMigration; consumed by MigrationExecutor.
struct MigrationPlan {
  /// One step per table of the new config, in its load order.
  std::vector<MigrationStep> steps;
  /// Number of atomic publish groups (0 when nothing moves).
  int num_epochs = 0;
  size_t tables_moved = 0;
  size_t tables_kept = 0;
  /// Totals over the non-keep steps (see MigrationStep for semantics).
  size_t moved_rows = 0;
  size_t moved_copies = 0;
  size_t moved_bytes = 0;
  /// Copies a full reload of *every* table would ship — the baseline that
  /// makes "minimal movement" a measurable claim (moved_copies <=
  /// reload_copies, with equality only when everything changed).
  size_t reload_copies = 0;

  /// True when no table needs to move (the configs partition identically).
  bool Empty() const { return tables_moved == 0; }

  /// Human-readable step list ("orders: RECOLOCATE epoch 0, 12345 rows").
  std::string ToString() const;
};

struct MigrationOptions {
  /// Run the routing/append phases on the shared ThreadPool. The result is
  /// bit-identical either way (the phases are deterministic).
  bool parallel = true;
  /// After staging each epoch, run VerifyColocation over the would-be
  /// published version and fail the migration instead of publishing a
  /// broken one. Costs a full scan of the PREF tables; meant for tests and
  /// paranoid deployments.
  bool verify_colocation = false;
};

/// \brief Diffs `current` (the serving database, which carries its specs)
/// against `new_config` and returns the minimal-movement plan.
///
/// `new_config` must be finalized and must cover every table of `current`
/// (complete a partial design with CompleteServingConfig first — see
/// design/wd_design.h). Movement numbers are exact: the planner replays
/// the deterministic routing phases for both the old and the new spec of
/// every changed table.
Result<MigrationPlan> PlanMigration(const Database& db,
                                    const PartitionedDatabase& current,
                                    const PartitioningConfig& new_config,
                                    const MigrationOptions& options = {});

/// \brief Checks that `pdb` upholds the co-location contract queries rely
/// on: every table holds exactly its source cardinality in non-duplicate
/// copies, PREF bitmap lengths match partition sizes, and every PREF row
/// flagged has_partner is physically co-located with a partitioning
/// partner in the same partition of its referenced table (the invariant
/// that makes the rewriter's local PREF joins correct).
Status VerifyColocation(const Database& db, const PartitionedDatabase& pdb);

/// \brief Applies a MigrationPlan against a live ServingDatabase.
///
/// Run() executes synchronously on the calling thread; Start() posts Run()
/// to the pool as one tagged background task and returns immediately
/// (pair with Wait()/Done()). Either way the executor publishes one new
/// version per epoch and leaves the serving database on the final version
/// on success, or on the last successfully published version on
/// cancellation/failure — never on a half-migrated one.
class MigrationExecutor {
 public:
  enum class State : uint8_t { kPending, kRunning, kDone, kCancelled, kFailed };

  /// `db`, `serving` and the current version's storage must outlive the
  /// executor. The plan is consumed (moved in).
  MigrationExecutor(const Database& db, ServingDatabase* serving,
                    MigrationPlan plan, MigrationOptions options = {});
  /// Blocks until a started migration finished (like the scheduler, the
  /// destructor never abandons an in-flight background task).
  ~MigrationExecutor();

  MigrationExecutor(const MigrationExecutor&) = delete;
  MigrationExecutor& operator=(const MigrationExecutor&) = delete;

  /// Runs the whole migration on the calling thread. Returns the terminal
  /// status (also retrievable via Wait()). Must be called at most once,
  /// and not after Start().
  Status Run();

  /// Launches Run() as a background task on `pool` (default: the shared
  /// pool). The task carries a dedicated task tag, so its morsels
  /// round-robin fairly against concurrently executing queries.
  void Start(ThreadPool* pool = nullptr);

  /// Blocks until the migration reached a terminal state and returns its
  /// status (OK / Cancelled / the failure). Helps the pool while waiting,
  /// so a 1-lane configuration still makes progress.
  Status Wait();

  /// Requests cooperative cancellation: the migration stops after the
  /// table it is currently rebuilding, skips the pending epoch's publish,
  /// and finishes as Cancelled. Published epochs stay published.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// True once the migration reached a terminal state.
  bool Done() const;
  State state() const;

  /// Epochs successfully published so far (== plan().num_epochs on
  /// success).
  int epochs_published() const;
  /// The version number of the last publish (0 before the first).
  uint64_t last_published_version() const;

  const MigrationPlan& plan() const { return plan_; }

 private:
  /// Shared tail of Run()/Start(): flips to kRunning, executes, records
  /// the terminal state and wakes waiters.
  Status RunStarted();
  /// The migration body: rebuild per epoch, publish per epoch.
  Status Execute();
  /// Rebuilds one table into `staging` through the shared load phases.
  Status RebuildTable(MigrationStep* step, PartitionedDatabase* staging);
  /// Blocks until terminal state, lending the thread to the pool.
  void WaitTerminal();

  const Database& db_;
  ServingDatabase* serving_;
  MigrationPlan plan_;
  MigrationOptions options_;
  /// The version the plan was computed against; kept alive for table
  /// sharing until the migration finishes.
  std::shared_ptr<const PartitionedDatabase> base_;

  std::atomic<bool> cancel_{false};

  /// Held across state transitions that publish epochs (ServingDatabase)
  /// and dispatch rebuild tasks (ThreadPool) — ordered before both in the
  /// global hierarchy (common/mutex.h).
  mutable Mutex mu_ ACQUIRED_BEFORE(serving_->serving_mu(), pool_->pool_mu());
  CondVar cv_;
  State state_ GUARDED_BY(mu_) = State::kPending;
  bool started_ GUARDED_BY(mu_) = false;
  Status final_status_ GUARDED_BY(mu_) = Status::OK();
  int epochs_published_ GUARDED_BY(mu_) = 0;
  uint64_t last_version_ GUARDED_BY(mu_) = 0;
  ThreadPool* pool_ = nullptr;
};

}  // namespace pref
