#include "partition/bulk_loader.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "partition/partitioner.h"

namespace pref {

namespace {

PartitionIndex::Key KeyOf(const RowBlock& rows, const std::vector<ColumnId>& cols,
                          size_t r) {
  PartitionIndex::Key key;
  key.reserve(cols.size());
  for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
  return key;
}

/// Finds the partitions of `ref` containing a partner of row `r` by
/// scanning (the naive path used when no partition index is available).
std::vector<int> ScanForPartners(const PartitionedTable& ref,
                                 const std::vector<ColumnId>& ref_cols,
                                 const RowBlock& rows,
                                 const std::vector<ColumnId>& local_cols, size_t r,
                                 size_t* probes) {
  std::vector<int> out;
  for (int p = 0; p < ref.num_partitions(); ++p) {
    const RowBlock& ref_rows = ref.partition(p).rows;
    for (size_t i = 0; i < ref_rows.num_rows(); ++i) {
      ++*probes;
      if (rows.RowsEqual(local_cols, r, ref_rows, ref_cols, i)) {
        out.push_back(p);
        break;
      }
    }
  }
  return out;
}

/// Runs body(chunk, begin, end) over [0, n): on the default ThreadPool when
/// `parallel`, as one chunk on the calling thread otherwise.
void ForChunks(bool parallel, size_t n,
               const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  if (parallel) {
    ThreadPool::Default().ParallelForChunks(n, body);
  } else {
    body(0, 0, n);
  }
}

/// Runs fn(0) .. fn(n-1): pooled when `parallel`, serially otherwise.
void ForEach(bool parallel, int n, const std::function<void(int)>& fn) {
  if (parallel) {
    ThreadPool::Default().ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

/// One physical copy scheduled for a target partition: source row plus the
/// PREF dup flag (true for every placement after the row's first).
struct Copy {
  size_t row;
  bool dup;
};

}  // namespace

Result<BulkLoadStats> BulkLoader::Append(PartitionedDatabase* pdb, TableId id,
                                         const RowBlock& new_rows) {
  PartitionedTable* table = pdb->GetTable(id);
  if (table == nullptr) {
    return Status::NotFound("table id ", id, " not in partitioned database");
  }
  if (new_rows.num_columns() != table->def().num_columns()) {
    return Status::Invalid("bulk-load rows have arity ", new_rows.num_columns(),
                           " but table '", table->name(), "' has ",
                           table->def().num_columns());
  }
  const PartitionSpec& spec = table->spec();
  const int n = table->num_partitions();
  const size_t rows = new_rows.num_rows();
  BulkLoadStats stats;
  stats.rows_inserted = rows;
  TraceSpan load_span("BulkLoad", "load");
  load_span.AddArg("rows", static_cast<int64_t>(rows));

  // ---------------------------------------------------------------- Phase 1
  // Route: the ordered partition list of every input row. Read-only against
  // the database, so row chunks fan out across the pool. `placements[r]`
  // ends up exactly what the serial loop would produce (the round-robin
  // orphan assignment is replayed sequentially below).
  std::vector<std::vector<int>> placements(rows);
  const bool is_pref = spec.method == PartitionMethod::kPref;
  std::vector<uint8_t> has_partner;  // per input row; PREF only

  {
    ScopedTimer route_timer(&stats.route_seconds);
    TraceSpan route_span("BulkLoad.route", "load");
    switch (spec.method) {
      case PartitionMethod::kHash: {
        ForChunks(parallel_, rows, [&](int, size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r) {
            placements[r].push_back(
                static_cast<int>(new_rows.HashRow(spec.attributes, r) %
                                 static_cast<uint64_t>(n)));
          }
        });
        break;
      }
      case PartitionMethod::kRange: {
        if (spec.attributes.empty()) {
          return Status::Invalid("RANGE spec of table '", table->name(),
                                 "' has no partitioning attribute");
        }
        if (spec.range_bounds.size() + 1 != static_cast<size_t>(n)) {
          return Status::Invalid("RANGE spec of table '", table->name(), "' has ",
                                 spec.range_bounds.size(), " bounds for ", n,
                                 " partitions (want ", n - 1, ")");
        }
        const Column& col = new_rows.column(spec.attributes[0]);
        const auto& bounds = spec.range_bounds;
        ForChunks(parallel_, rows, [&](int, size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r) {
            const Value v = col.GetValue(r);
            // First bound strictly greater than v == the owning partition
            // (partition i holds bounds[i-1] <= v < bounds[i]).
            placements[r].push_back(static_cast<int>(
                std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin()));
          }
        });
        break;
      }
      case PartitionMethod::kRoundRobin: {
        int next = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
        for (size_t r = 0; r < rows; ++r) {
          placements[r].push_back(next);
          next = (next + 1) % n;
        }
        break;
      }
      case PartitionMethod::kReplicated: {
        ForChunks(parallel_, rows, [&](int, size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r) {
            placements[r].resize(static_cast<size_t>(n));
            std::iota(placements[r].begin(), placements[r].end(), 0);
          }
        });
        break;
      }
      case PartitionMethod::kPref: {
        PartitionedTable* ref = pdb->GetTable(spec.referenced_table);
        if (ref == nullptr) {
          return Status::Invalid("PREF-referenced table of '", table->name(),
                                 "' missing from partitioned database");
        }
        const auto& ref_cols = spec.predicate->right_columns;
        const PartitionIndex* index = nullptr;
        if (use_partition_index_) {
          // Built (serially) before the fan-out; afterwards it is only read.
          index = ref->FindPartitionIndex(ref_cols);
          if (index == nullptr) index = BuildPartitionIndex(ref, ref_cols);
        }
        has_partner.assign(rows, 0);
        // Per-chunk counters: chunk indexes are dense in [0, lanes), so each
        // routing task owns one slot and the hot loop shares no counters.
        const size_t lanes = parallel_
            ? static_cast<size_t>(ThreadPool::Default().num_threads())
            : 1;
        std::vector<size_t> lookups(lanes, 0);
        std::vector<size_t> probes(lanes, 0);
        ForChunks(parallel_, rows, [&](int chunk, size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r) {
            std::vector<int> parts;
            if (index != nullptr) {
              ++lookups[static_cast<size_t>(chunk)];
              parts = index->Lookup(KeyOf(new_rows, spec.attributes, r));
            } else {
              parts = ScanForPartners(*ref, ref_cols, new_rows, spec.attributes, r,
                                      &probes[static_cast<size_t>(chunk)]);
            }
            if (!parts.empty()) {
              placements[r] = std::move(parts);
              has_partner[r] = 1;
            }
          }
        });
        stats.index_lookups = std::accumulate(lookups.begin(), lookups.end(),
                                              size_t{0});
        stats.scan_probes = std::accumulate(probes.begin(), probes.end(),
                                            size_t{0});
        // Orphans (no partitioning partner) go round-robin, replayed in row
        // order so the result matches a serial load exactly.
        int next_rr = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
        for (size_t r = 0; r < rows; ++r) {
          if (placements[r].empty()) {
            placements[r].push_back(next_rr);
            next_rr = (next_rr + 1) % n;
          }
        }
        break;
      }
      case PartitionMethod::kNone:
        return Status::Invalid("table '", table->name(), "' has no partitioning");
    }
  }

  // ---------------------------------------------------------------- Phase 2
  // Append: invert the placements into one work list per target partition,
  // then fan out per partition. Each task exclusively owns its partition's
  // RowBlock and dup/hasS bitmaps — no locks on the data path — and appends
  // in input-row order, matching the serial loop byte for byte.
  {
    ScopedTimer append_timer(&stats.append_seconds);
    TraceSpan append_span("BulkLoad.append", "load");
    std::vector<std::vector<Copy>> per_part(static_cast<size_t>(n));
    for (auto& list : per_part) list.reserve(rows / static_cast<size_t>(n) + 1);
    for (size_t r = 0; r < rows; ++r) {
      const auto& parts = placements[r];
      for (size_t k = 0; k < parts.size(); ++k) {
        per_part[static_cast<size_t>(parts[k])].push_back(Copy{r, k > 0});
      }
      stats.copies_written += parts.size();
    }
    ForEach(parallel_, n, [&](int p) {
      Partition& part = table->partition(p);
      const auto& list = per_part[static_cast<size_t>(p)];
      part.rows.Reserve(part.rows.num_rows() + list.size());
      for (const Copy& c : list) {
        part.rows.AppendRow(new_rows, c.row);
        if (is_pref) {
          part.dup.PushBack(c.dup);
          part.has_partner.PushBack(has_partner[c.row] != 0);
        }
      }
    });
  }

  // ---------------------------------------------------------------- Phase 3
  // Maintain the partition indexes registered on this table (so later PREF
  // loads that reference it stay correct). Each task exclusively owns one
  // index and inserts in row order — same structure as a serial load.
  {
    ScopedTimer index_timer(&stats.index_seconds);
    TraceSpan index_span("BulkLoad.index", "load");
    auto& indexes = table->indexes();
    ForEach(parallel_, static_cast<int>(indexes.size()), [&](int i) {
      auto& [cols, idx] = indexes[static_cast<size_t>(i)];
      for (size_t r = 0; r < rows; ++r) {
        for (int p : placements[r]) idx->Add(KeyOf(new_rows, cols, r), p);
      }
    });
  }

  // Registry counters mirror the returned stats so bench --json snapshots
  // and long-running loads can be inspected without plumbing BulkLoadStats.
  static Counter& rows_inserted_ctr =
      MetricsRegistry::Default().GetCounter("load.rows_inserted");
  static Counter& copies_written_ctr =
      MetricsRegistry::Default().GetCounter("load.copies_written");
  static Counter& index_lookups_ctr =
      MetricsRegistry::Default().GetCounter("load.index_lookups");
  static Counter& scan_probes_ctr =
      MetricsRegistry::Default().GetCounter("load.scan_probes");
  static Histogram& load_seconds_hist =
      MetricsRegistry::Default().GetHistogram("load.append_seconds");
  rows_inserted_ctr.Add(stats.rows_inserted);
  copies_written_ctr.Add(stats.copies_written);
  index_lookups_ctr.Add(stats.index_lookups);
  scan_probes_ctr.Add(stats.scan_probes);
  load_seconds_hist.Observe(stats.route_seconds + stats.append_seconds +
                            stats.index_seconds);
  return stats;
}

}  // namespace pref
