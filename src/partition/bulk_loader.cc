#include "partition/bulk_loader.h"

#include <algorithm>

#include "partition/partitioner.h"

namespace pref {

namespace {

PartitionIndex::Key KeyOf(const RowBlock& rows, const std::vector<ColumnId>& cols,
                          size_t r) {
  PartitionIndex::Key key;
  key.reserve(cols.size());
  for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
  return key;
}

/// Appends row `r` of `src` to partition `p` of `table`, maintaining the
/// PREF bitmaps (when the table has them) and this table's own partition
/// indexes.
void AppendCopy(PartitionedTable* table, int p, const RowBlock& src, size_t r,
                bool is_dup, bool has_partner, bool is_pref) {
  Partition& part = table->partition(p);
  part.rows.AppendRow(src, r);
  if (is_pref) {
    part.dup.PushBack(is_dup);
    part.has_partner.PushBack(has_partner);
  }
}

/// Finds the partitions of `ref` containing a partner of row `r` by
/// scanning (the naive path used when no partition index is available).
std::vector<int> ScanForPartners(const PartitionedTable& ref,
                                 const std::vector<ColumnId>& ref_cols,
                                 const RowBlock& rows,
                                 const std::vector<ColumnId>& local_cols, size_t r,
                                 size_t* probes) {
  std::vector<int> out;
  for (int p = 0; p < ref.num_partitions(); ++p) {
    const RowBlock& ref_rows = ref.partition(p).rows;
    for (size_t i = 0; i < ref_rows.num_rows(); ++i) {
      ++*probes;
      if (rows.RowsEqual(local_cols, r, ref_rows, ref_cols, i)) {
        out.push_back(p);
        break;
      }
    }
  }
  return out;
}

}  // namespace

Result<BulkLoadStats> BulkLoader::Append(PartitionedDatabase* pdb, TableId id,
                                         const RowBlock& new_rows) {
  PartitionedTable* table = pdb->GetTable(id);
  if (table == nullptr) {
    return Status::NotFound("table id ", id, " not in partitioned database");
  }
  if (new_rows.num_columns() != table->def().num_columns()) {
    return Status::Invalid("bulk-load rows have arity ", new_rows.num_columns(),
                           " but table '", table->name(), "' has ",
                           table->def().num_columns());
  }
  const PartitionSpec& spec = table->spec();
  const int n = table->num_partitions();
  BulkLoadStats stats;
  stats.rows_inserted = new_rows.num_rows();

  // Track the partitions each new row lands in so this table's own
  // partition indexes can be maintained afterwards.
  std::vector<std::vector<int>> placements(new_rows.num_rows());

  switch (spec.method) {
    case PartitionMethod::kHash: {
      for (size_t r = 0; r < new_rows.num_rows(); ++r) {
        int p = static_cast<int>(new_rows.HashRow(spec.attributes, r) %
                                 static_cast<uint64_t>(n));
        AppendCopy(table, p, new_rows, r, false, false, /*is_pref=*/false);
        placements[r].push_back(p);
      }
      break;
    }
    case PartitionMethod::kRange: {
      for (size_t r = 0; r < new_rows.num_rows(); ++r) {
        const Value v = new_rows.column(spec.attributes[0]).GetValue(r);
        int p = 0;
        for (const auto& b : spec.range_bounds) {
          if (v < b) break;
          ++p;
        }
        AppendCopy(table, p, new_rows, r, false, false, /*is_pref=*/false);
        placements[r].push_back(p);
      }
      break;
    }
    case PartitionMethod::kRoundRobin: {
      int next = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
      for (size_t r = 0; r < new_rows.num_rows(); ++r) {
        AppendCopy(table, next, new_rows, r, false, false, false);
        placements[r].push_back(next);
        next = (next + 1) % n;
      }
      break;
    }
    case PartitionMethod::kReplicated: {
      for (size_t r = 0; r < new_rows.num_rows(); ++r) {
        for (int p = 0; p < n; ++p) {
          AppendCopy(table, p, new_rows, r, false, false, false);
          placements[r].push_back(p);
        }
      }
      break;
    }
    case PartitionMethod::kPref: {
      PartitionedTable* ref = pdb->GetTable(spec.referenced_table);
      if (ref == nullptr) {
        return Status::Invalid("PREF-referenced table of '", table->name(),
                               "' missing from partitioned database");
      }
      const auto& ref_cols = spec.predicate->right_columns;
      const PartitionIndex* index = nullptr;
      if (use_partition_index_) {
        index = ref->FindPartitionIndex(ref_cols);
        if (index == nullptr) index = BuildPartitionIndex(ref, ref_cols);
      }
      int next_rr = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
      for (size_t r = 0; r < new_rows.num_rows(); ++r) {
        std::vector<int> parts;
        if (index != nullptr) {
          ++stats.index_lookups;
          parts = index->Lookup(KeyOf(new_rows, spec.attributes, r));
        } else {
          parts = ScanForPartners(*ref, ref_cols, new_rows, spec.attributes, r,
                                  &stats.scan_probes);
        }
        if (parts.empty()) {
          AppendCopy(table, next_rr, new_rows, r, false, false, true);
          placements[r].push_back(next_rr);
          next_rr = (next_rr + 1) % n;
        } else {
          bool first = true;
          for (int p : parts) {
            AppendCopy(table, p, new_rows, r, !first, true, true);
            placements[r].push_back(p);
            first = false;
          }
        }
      }
      break;
    }
    case PartitionMethod::kNone:
      return Status::Invalid("table '", table->name(), "' has no partitioning");
  }

  for (const auto& row_parts : placements) {
    stats.copies_written += row_parts.size();
  }

  // Maintain partition indexes registered on this table. FindPartitionIndex
  // is const; re-derive mutable pointers by rebuilding is wasteful, so we
  // update via the known column sets.
  for (size_t r = 0; r < new_rows.num_rows(); ++r) {
    for (const auto& [cols, idx] : table->indexes()) {
      for (int p : placements[r]) idx->Add(KeyOf(new_rows, cols, r), p);
    }
  }
  return stats;
}

}  // namespace pref
