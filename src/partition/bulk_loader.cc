#include "partition/bulk_loader.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "common/metric_names.h"
#include "partition/load_phases.h"

namespace pref {

Result<BulkLoadStats> BulkLoader::Append(PartitionedDatabase* pdb, TableId id,
                                         const RowBlock& new_rows) {
  PartitionedTable* table = pdb->GetTable(id);
  if (table == nullptr) {
    return Status::NotFound("table id ", id, " not in partitioned database");
  }
  if (new_rows.num_columns() != table->def().num_columns()) {
    return Status::Invalid("bulk-load rows have arity ", new_rows.num_columns(),
                           " but table '", table->name(), "' has ",
                           table->def().num_columns());
  }
  BulkLoadStats stats;
  stats.rows_inserted = new_rows.num_rows();
  TraceSpan load_span(metric_names::kSpanBulkLoad, metric_names::kCategoryLoad);
  load_span.AddArg("rows", static_cast<int64_t>(new_rows.num_rows()));

  // The three-phase pipeline shared with PartitionDatabase (see
  // partition/load_phases.h for the ownership and determinism model).
  RoutedPlacements route;
  {
    ScopedTimer route_timer(&stats.route_seconds);
    TraceSpan route_span(metric_names::kSpanBulkLoadRoute, metric_names::kCategoryLoad);
    PREF_ASSIGN_OR_RAISE(
        route, RoutePlacements(pdb, table, new_rows, use_partition_index_,
                               parallel_));
    stats.index_lookups = route.index_lookups;
    stats.scan_probes = route.scan_probes;
  }
  {
    ScopedTimer append_timer(&stats.append_seconds);
    TraceSpan append_span(metric_names::kSpanBulkLoadAppend, metric_names::kCategoryLoad);
    stats.copies_written = ApplyPlacements(table, new_rows, route, parallel_);
  }
  {
    ScopedTimer index_timer(&stats.index_seconds);
    TraceSpan index_span(metric_names::kSpanBulkLoadIndex, metric_names::kCategoryLoad);
    MaintainPartitionIndexes(table, new_rows, route, parallel_);
  }

  // Registry counters mirror the returned stats so bench --json snapshots
  // and long-running loads can be inspected without plumbing BulkLoadStats.
  static Counter& rows_inserted_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kLoadRowsInserted);
  static Counter& copies_written_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kLoadCopiesWritten);
  static Counter& index_lookups_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kLoadIndexLookups);
  static Counter& scan_probes_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kLoadScanProbes);
  static Histogram& load_seconds_hist =
      MetricsRegistry::Default().GetHistogram(metric_names::kLoadAppendSeconds);
  rows_inserted_ctr.Add(stats.rows_inserted);
  copies_written_ctr.Add(stats.copies_written);
  index_lookups_ctr.Add(stats.index_lookups);
  scan_probes_ctr.Add(stats.scan_probes);
  load_seconds_hist.Observe(stats.route_seconds + stats.append_seconds +
                            stats.index_seconds);
  return stats;
}

}  // namespace pref
