#include "partition/load_phases.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/thread_pool.h"
#include "partition/partitioner.h"

namespace pref {

namespace {

PartitionIndex::Key KeyOf(const RowBlock& rows, const std::vector<ColumnId>& cols,
                          size_t r) {
  PartitionIndex::Key key;
  key.reserve(cols.size());
  for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
  return key;
}

/// Finds the partitions of `ref` containing a partner of row `r` by
/// scanning (the naive path used when no partition index is available).
std::vector<int> ScanForPartners(const PartitionedTable& ref,
                                 const std::vector<ColumnId>& ref_cols,
                                 const RowBlock& rows,
                                 const std::vector<ColumnId>& local_cols, size_t r,
                                 size_t* probes) {
  std::vector<int> out;
  for (int p = 0; p < ref.num_partitions(); ++p) {
    const RowBlock& ref_rows = ref.partition(p).rows;
    for (size_t i = 0; i < ref_rows.num_rows(); ++i) {
      ++*probes;
      if (rows.RowsEqual(local_cols, r, ref_rows, ref_cols, i)) {
        out.push_back(p);
        break;
      }
    }
  }
  return out;
}

/// Runs body(chunk, begin, end) over [0, n): on the default ThreadPool when
/// `parallel`, as one chunk on the calling thread otherwise.
void ForChunks(bool parallel, size_t n,
               const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  if (parallel) {
    ThreadPool::Default().ParallelForChunks(n, body);
  } else {
    body(0, 0, n);
  }
}

/// Runs fn(0) .. fn(n-1): pooled when `parallel`, serially otherwise.
void ForEach(bool parallel, int n, const std::function<void(int)>& fn) {
  if (parallel) {
    ThreadPool::Default().ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

/// One physical copy scheduled for a target partition: source row plus the
/// PREF dup flag (true for every placement after the row's first).
struct Copy {
  size_t row;
  bool dup;
};

}  // namespace

Result<RoutedPlacements> RoutePlacements(PartitionedDatabase* pdb,
                                         PartitionedTable* table,
                                         const RowBlock& rows,
                                         bool use_partition_index, bool parallel) {
  const PartitionSpec& spec = table->spec();
  const int n = table->num_partitions();
  const size_t num_rows = rows.num_rows();
  RoutedPlacements route;
  route.placements.resize(num_rows);

  switch (spec.method) {
    case PartitionMethod::kHash: {
      ForChunks(parallel, num_rows, [&](int, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          route.placements[r].push_back(
              static_cast<int>(rows.HashRow(spec.attributes, r) %
                               static_cast<uint64_t>(n)));
        }
      });
      break;
    }
    case PartitionMethod::kRange: {
      if (spec.attributes.empty()) {
        return Status::Invalid("RANGE spec of table '", table->name(),
                               "' has no partitioning attribute");
      }
      if (spec.range_bounds.size() + 1 != static_cast<size_t>(n)) {
        return Status::Invalid("RANGE spec of table '", table->name(), "' has ",
                               spec.range_bounds.size(), " bounds for ", n,
                               " partitions (want ", n - 1, ")");
      }
      const Column& col = rows.column(spec.attributes[0]);
      const auto& bounds = spec.range_bounds;
      ForChunks(parallel, num_rows, [&](int, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const Value v = col.GetValue(r);
          // First bound strictly greater than v == the owning partition
          // (partition i holds bounds[i-1] <= v < bounds[i]).
          route.placements[r].push_back(static_cast<int>(
              std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin()));
        }
      });
      break;
    }
    case PartitionMethod::kRoundRobin: {
      // Round-robin continues from the table's current size, replayed in
      // row order — identical to the serial loop for any thread count.
      int next = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
      for (size_t r = 0; r < num_rows; ++r) {
        route.placements[r].push_back(next);
        next = (next + 1) % n;
      }
      break;
    }
    case PartitionMethod::kReplicated: {
      ForChunks(parallel, num_rows, [&](int, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          route.placements[r].resize(static_cast<size_t>(n));
          std::iota(route.placements[r].begin(), route.placements[r].end(), 0);
        }
      });
      break;
    }
    case PartitionMethod::kPref: {
      PartitionedTable* ref = pdb->GetTable(spec.referenced_table);
      if (ref == nullptr) {
        return Status::Invalid("PREF-referenced table of '", table->name(),
                               "' missing from partitioned database");
      }
      const auto& ref_cols = spec.predicate->right_columns;
      const PartitionIndex* index = nullptr;
      if (use_partition_index) {
        // Built (serially) before the fan-out; afterwards it is only read.
        index = ref->FindPartitionIndex(ref_cols);
        if (index == nullptr) index = BuildPartitionIndex(ref, ref_cols);
      }
      route.has_partner.assign(num_rows, 0);
      // Per-chunk counters: chunk indexes are dense in [0, lanes), so each
      // routing task owns one slot and the hot loop shares no counters.
      const size_t lanes =
          parallel ? static_cast<size_t>(ThreadPool::Default().num_threads()) : 1;
      std::vector<size_t> lookups(lanes, 0);
      std::vector<size_t> probes(lanes, 0);
      ForChunks(parallel, num_rows, [&](int chunk, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          std::vector<int> parts;
          if (index != nullptr) {
            ++lookups[static_cast<size_t>(chunk)];
            parts = index->Lookup(KeyOf(rows, spec.attributes, r));
          } else {
            parts = ScanForPartners(*ref, ref_cols, rows, spec.attributes, r,
                                    &probes[static_cast<size_t>(chunk)]);
          }
          if (!parts.empty()) {
            route.placements[r] = std::move(parts);
            route.has_partner[r] = 1;
          }
        }
      });
      route.index_lookups =
          std::accumulate(lookups.begin(), lookups.end(), size_t{0});
      route.scan_probes = std::accumulate(probes.begin(), probes.end(), size_t{0});
      // Orphans (no partitioning partner) go round-robin, replayed in row
      // order so the result matches a serial pass exactly.
      int next_rr = static_cast<int>(table->TotalRows() % static_cast<size_t>(n));
      for (size_t r = 0; r < num_rows; ++r) {
        if (route.placements[r].empty()) {
          route.placements[r].push_back(next_rr);
          next_rr = (next_rr + 1) % n;
        }
      }
      break;
    }
    case PartitionMethod::kNone:
      return Status::Invalid("table '", table->name(), "' has no partitioning");
  }
  return route;
}

size_t ApplyPlacements(PartitionedTable* table, const RowBlock& rows,
                       const RoutedPlacements& route, bool parallel) {
  const int n = table->num_partitions();
  const size_t num_rows = rows.num_rows();
  const bool is_pref = table->spec().method == PartitionMethod::kPref;
  // Invert the placements into one work list per target partition, then fan
  // out per partition. Each task exclusively owns its partition's RowBlock
  // and dup/hasS bitmaps — no locks on the data path — and appends in
  // input-row order, matching the serial loop byte for byte.
  size_t copies = 0;
  std::vector<std::vector<Copy>> per_part(static_cast<size_t>(n));
  for (auto& list : per_part) list.reserve(num_rows / static_cast<size_t>(n) + 1);
  for (size_t r = 0; r < num_rows; ++r) {
    const auto& parts = route.placements[r];
    for (size_t k = 0; k < parts.size(); ++k) {
      per_part[static_cast<size_t>(parts[k])].push_back(Copy{r, k > 0});
    }
    copies += parts.size();
  }
  ForEach(parallel, n, [&](int p) {
    Partition& part = table->partition(p);
    const auto& list = per_part[static_cast<size_t>(p)];
    part.rows.Reserve(part.rows.num_rows() + list.size());
    for (const Copy& c : list) {
      part.rows.AppendRow(rows, c.row);
      if (is_pref) {
        part.dup.PushBack(c.dup);
        part.has_partner.PushBack(route.has_partner[c.row] != 0);
      }
    }
  });
  return copies;
}

void MaintainPartitionIndexes(PartitionedTable* table, const RowBlock& rows,
                              const RoutedPlacements& route, bool parallel) {
  auto& indexes = table->indexes();
  ForEach(parallel, static_cast<int>(indexes.size()), [&](int i) {
    auto& [cols, idx] = indexes[static_cast<size_t>(i)];
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      for (int p : route.placements[r]) idx->Add(KeyOf(rows, cols, r), p);
    }
  });
}

}  // namespace pref
