#include "partition/partitioner.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "common/metric_names.h"
#include "partition/load_phases.h"

namespace pref {

namespace {

PartitionIndex::Key KeyOf(const RowBlock& rows, const std::vector<ColumnId>& cols,
                          size_t r) {
  PartitionIndex::Key key;
  key.reserve(cols.size());
  for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
  return key;
}

}  // namespace

PartitionIndex* BuildPartitionIndex(PartitionedTable* table,
                                    const std::vector<ColumnId>& columns) {
  PartitionIndex* index = table->AddPartitionIndex(columns);
  for (int p = 0; p < table->num_partitions(); ++p) {
    const RowBlock& rows = table->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      index->Add(KeyOf(rows, columns, r), p);
    }
  }
  return index;
}

Result<std::unique_ptr<PartitionedDatabase>> PartitionDatabase(
    const Database& db, PartitioningConfig config, bool parallel) {
  if (!config.finalized()) {
    PREF_RETURN_NOT_OK(config.Finalize());
  }
  TraceSpan span(metric_names::kSpanPartitionDatabase, metric_names::kCategoryPartition);
  static Counter& tables_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kPartitionTables);
  static Counter& rows_routed_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kPartitionRowsRouted);
  static Counter& copies_written_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kPartitionCopiesWritten);
  static Counter& index_lookups_ctr =
      MetricsRegistry::Default().GetCounter(metric_names::kPartitionIndexLookups);

  auto pdb = std::make_unique<PartitionedDatabase>(&db);
  size_t total_rows = 0;
  size_t total_copies = 0;
  for (TableId id : config.LoadOrder()) {
    const PartitionSpec& spec = config.spec(id);
    PREF_ASSIGN_OR_RAISE(PartitionedTable * out, pdb->AddTable(id, spec));
    const Table& src = db.table(id);
    // The initial partitioning pass is a bulk load into empty partitions:
    // the shared route → append → index phases of load_phases.h, on the
    // bounded ThreadPool when `parallel`. For PREF tables, RoutePlacements
    // builds (and the database retains) the partition index on the
    // referenced table's predicate columns.
    TraceSpan table_span(metric_names::kSpanPartitionTable, metric_names::kCategoryPartition);
    table_span.AddArg("rows", static_cast<int64_t>(src.data().num_rows()));
    RoutedPlacements route;
    {
      TraceSpan route_span(metric_names::kSpanPartitionTableRoute, metric_names::kCategoryPartition);
      PREF_ASSIGN_OR_RAISE(route,
                           RoutePlacements(pdb.get(), out, src.data(),
                                           /*use_partition_index=*/true, parallel));
    }
    size_t copies;
    {
      TraceSpan append_span(metric_names::kSpanPartitionTableAppend, metric_names::kCategoryPartition);
      copies = ApplyPlacements(out, src.data(), route, parallel);
    }
    {
      // Freshly added tables carry no registered indexes yet; this is the
      // same phase the bulk loader runs, kept for symmetry and for future
      // callers that pre-register indexes.
      TraceSpan index_span(metric_names::kSpanPartitionTableIndex, metric_names::kCategoryPartition);
      MaintainPartitionIndexes(out, src.data(), route, parallel);
    }
    total_rows += src.data().num_rows();
    total_copies += copies;
    index_lookups_ctr.Add(route.index_lookups);
    tables_ctr.Add(1);
  }
  rows_routed_ctr.Add(total_rows);
  copies_written_ctr.Add(total_copies);
  span.AddArg("rows", static_cast<int64_t>(total_rows));
  span.AddArg("copies", static_cast<int64_t>(total_copies));
  return pdb;
}

}  // namespace pref
