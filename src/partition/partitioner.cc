#include "partition/partitioner.h"

namespace pref {

namespace {

/// Routes every row of `src` into `out` partitions by hash of the spec's
/// attribute columns.
void HashPartition(const Table& src, PartitionedTable* out) {
  const RowBlock& rows = src.data();
  const auto& attrs = out->spec().attributes;
  const int n = out->num_partitions();
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    int p = static_cast<int>(rows.HashRow(attrs, r) % static_cast<uint64_t>(n));
    out->partition(p).rows.AppendRow(rows, r);
  }
}

/// Partition id for `v` under ascending upper bounds.
int RangeBucket(const Value& v, const std::vector<Value>& bounds) {
  int lo = 0;
  for (const auto& b : bounds) {
    if (v < b) return lo;
    ++lo;
  }
  return lo;
}

void RangePartition(const Table& src, PartitionedTable* out) {
  const RowBlock& rows = src.data();
  const ColumnId col = out->spec().attributes[0];
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    int p = RangeBucket(rows.column(col).GetValue(r), out->spec().range_bounds);
    out->partition(p).rows.AppendRow(rows, r);
  }
}

void RoundRobinPartition(const Table& src, PartitionedTable* out) {
  const RowBlock& rows = src.data();
  const int n = out->num_partitions();
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    out->partition(static_cast<int>(r % static_cast<size_t>(n))).rows.AppendRow(rows, r);
  }
}

void Replicate(const Table& src, PartitionedTable* out) {
  const RowBlock& rows = src.data();
  for (int p = 0; p < out->num_partitions(); ++p) {
    RowBlock& dst = out->partition(p).rows;
    dst.Reserve(rows.num_rows());
    for (size_t r = 0; r < rows.num_rows(); ++r) dst.AppendRow(rows, r);
  }
}

PartitionIndex::Key KeyOf(const RowBlock& rows, const std::vector<ColumnId>& cols,
                          size_t r) {
  PartitionIndex::Key key;
  key.reserve(cols.size());
  for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
  return key;
}

/// PREF-partitions `src` (Definition 1). `ref_index` maps the referenced
/// table's predicate-column keys to the partitions containing them.
void PrefPartition(const Table& src, const PartitionIndex& ref_index,
                   PartitionedTable* out) {
  const RowBlock& rows = src.data();
  const auto& attrs = out->spec().attributes;  // local predicate columns
  const int n = out->num_partitions();
  int next_round_robin = 0;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    const auto& parts = ref_index.Lookup(KeyOf(rows, attrs, r));
    if (parts.empty()) {
      // Condition (2): no partitioning partner — place once, round-robin.
      Partition& p = out->partition(next_round_robin);
      next_round_robin = (next_round_robin + 1) % n;
      p.rows.AppendRow(rows, r);
      p.dup.PushBack(false);
      p.has_partner.PushBack(false);
    } else {
      // Condition (1): copy into every partition holding a partner. The
      // first copy (lowest partition id) is the original; the rest are
      // duplicates.
      bool first = true;
      for (int pid : parts) {
        Partition& p = out->partition(pid);
        p.rows.AppendRow(rows, r);
        p.dup.PushBack(!first);
        p.has_partner.PushBack(true);
        first = false;
      }
    }
  }
}

}  // namespace

PartitionIndex* BuildPartitionIndex(PartitionedTable* table,
                                    const std::vector<ColumnId>& columns) {
  PartitionIndex* index = table->AddPartitionIndex(columns);
  for (int p = 0; p < table->num_partitions(); ++p) {
    const RowBlock& rows = table->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      index->Add(KeyOf(rows, columns, r), p);
    }
  }
  return index;
}

Result<std::unique_ptr<PartitionedDatabase>> PartitionDatabase(
    const Database& db, PartitioningConfig config) {
  if (!config.finalized()) {
    PREF_RETURN_NOT_OK(config.Finalize());
  }
  auto pdb = std::make_unique<PartitionedDatabase>(&db);
  for (TableId id : config.LoadOrder()) {
    const PartitionSpec& spec = config.spec(id);
    PREF_ASSIGN_OR_RAISE(PartitionedTable * out, pdb->AddTable(id, spec));
    const Table& src = db.table(id);
    switch (spec.method) {
      case PartitionMethod::kHash:
        HashPartition(src, out);
        break;
      case PartitionMethod::kRange:
        RangePartition(src, out);
        break;
      case PartitionMethod::kRoundRobin:
        RoundRobinPartition(src, out);
        break;
      case PartitionMethod::kReplicated:
        Replicate(src, out);
        break;
      case PartitionMethod::kPref: {
        PartitionedTable* ref = pdb->GetTable(spec.referenced_table);
        if (ref == nullptr) {
          return Status::Internal("referenced table not yet partitioned");
        }
        const auto& ref_cols = spec.predicate->right_columns;
        const PartitionIndex* index = ref->FindPartitionIndex(ref_cols);
        if (index == nullptr) index = BuildPartitionIndex(ref, ref_cols);
        PrefPartition(src, *index, out);
        break;
      }
      case PartitionMethod::kNone:
        return Status::Invalid("table '", src.name(), "' has no partitioning method");
    }
  }
  return pdb;
}

}  // namespace pref
