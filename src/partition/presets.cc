#include "partition/presets.h"

#include <algorithm>

#include "catalog/tpcds_schema.h"

namespace pref {

Result<PartitioningConfig> MakeAllHashed(const Schema& schema, int num_partitions) {
  PartitioningConfig config(&schema, num_partitions);
  for (const auto& t : schema.tables()) {
    if (t.primary_key.empty()) {
      PREF_RETURN_NOT_OK(config.AddHash(t.name, {t.columns[0].name}));
    } else {
      PREF_RETURN_NOT_OK(config.AddHashOnPrimaryKey(t.name));
    }
  }
  PREF_RETURN_NOT_OK(config.Finalize());
  return config;
}

Result<PartitioningConfig> MakeAllReplicated(const Schema& schema,
                                             int num_partitions) {
  PartitioningConfig config(&schema, num_partitions);
  for (const auto& t : schema.tables()) {
    PREF_RETURN_NOT_OK(config.AddReplicated(t.name));
  }
  PREF_RETURN_NOT_OK(config.Finalize());
  return config;
}

Result<PartitioningConfig> MakeTpchClassical(const Schema& schema,
                                             int num_partitions) {
  PartitioningConfig config(&schema, num_partitions);
  PREF_RETURN_NOT_OK(config.AddHash("lineitem", {"l_orderkey"}));
  PREF_RETURN_NOT_OK(config.AddHash("orders", {"o_orderkey"}));
  for (const auto& t : schema.tables()) {
    if (t.name == "lineitem" || t.name == "orders") continue;
    PREF_RETURN_NOT_OK(config.AddReplicated(t.name));
  }
  PREF_RETURN_NOT_OK(config.Finalize());
  return config;
}

Result<PartitioningConfig> MakeTpcdsClassicalNaive(const Schema& schema,
                                                   int num_partitions) {
  PartitioningConfig config(&schema, num_partitions);
  // Biggest table co-hashed with its biggest connected table on the
  // composite sales/returns join key.
  PREF_RETURN_NOT_OK(
      config.AddHash("store_sales", {"ss_item_sk", "ss_ticket_number"}));
  PREF_RETURN_NOT_OK(
      config.AddHash("store_returns", {"sr_item_sk", "sr_ticket_number"}));
  for (const auto& t : schema.tables()) {
    if (t.name == "store_sales" || t.name == "store_returns") continue;
    PREF_RETURN_NOT_OK(config.AddReplicated(t.name));
  }
  PREF_RETURN_NOT_OK(config.Finalize());
  return config;
}

Result<Deployment> MakeTpcdsClassicalStars(const Database& db, int num_partitions) {
  const Schema& schema = db.schema();
  Deployment deployment;
  for (const auto& fact_name : TpcdsFactTables()) {
    PREF_ASSIGN_OR_RAISE(TableId fact_id, schema.FindTable(fact_name));
    // Collect dimensions directly referenced by this fact table (fact-fact
    // edges, e.g. returns -> sales, are cut by the star decomposition).
    struct Dim {
      const ForeignKey* fk;
      size_t rows;
    };
    std::vector<Dim> dims;
    for (const auto& fk : schema.foreign_keys()) {
      if (fk.src_table != fact_id) continue;
      if (TpcdsIsFactTable(schema.table(fk.dst_table).name)) continue;
      dims.push_back({&fk, db.table(fk.dst_table).num_rows()});
    }
    if (dims.empty()) {
      return Status::Internal("fact table '", fact_name, "' has no dimensions");
    }
    // Co-hash the fact with its biggest dimension on the FK join key.
    const Dim* biggest =
        &*std::max_element(dims.begin(), dims.end(),
                           [](const Dim& a, const Dim& b) { return a.rows < b.rows; });
    PartitioningConfig config(&schema, num_partitions);
    const TableDef& fact = schema.table(fact_id);
    const TableDef& big_dim = schema.table(biggest->fk->dst_table);
    std::vector<std::string> fact_cols, dim_cols;
    for (ColumnId c : biggest->fk->src_columns) fact_cols.push_back(fact.column(c).name);
    for (ColumnId c : biggest->fk->dst_columns)
      dim_cols.push_back(big_dim.column(c).name);
    PREF_RETURN_NOT_OK(config.AddHash(fact.name, fact_cols));
    PREF_RETURN_NOT_OK(config.AddHash(big_dim.name, dim_cols));
    for (const auto& d : dims) {
      const std::string& name = schema.table(d.fk->dst_table).name;
      if (name == big_dim.name || config.Contains(d.fk->dst_table)) continue;
      PREF_RETURN_NOT_OK(config.AddReplicated(name));
    }
    PREF_RETURN_NOT_OK(config.Finalize());
    deployment.AddConfig(std::move(config));
  }
  return deployment;
}

}  // namespace pref
