#include "partition/deployment.h"

#include <algorithm>

namespace pref {

bool SpecsEquivalent(const PartitionSpec& a, const PartitionSpec& b) {
  if (a.method != b.method || a.num_partitions != b.num_partitions) return false;
  switch (a.method) {
    case PartitionMethod::kHash:
      return a.attributes == b.attributes;
    case PartitionMethod::kRange: {
      if (a.attributes != b.attributes) return false;
      if (a.range_bounds.size() != b.range_bounds.size()) return false;
      for (size_t i = 0; i < a.range_bounds.size(); ++i) {
        if (!(a.range_bounds[i] == b.range_bounds[i])) return false;
      }
      return true;
    }
    case PartitionMethod::kPref:
      return a.referenced_table == b.referenced_table &&
             a.predicate.has_value() && b.predicate.has_value() &&
             a.predicate->EquivalentTo(*b.predicate);
    default:
      return true;  // replicated / round-robin carry no parameters
  }
}

Result<std::vector<std::unique_ptr<PartitionedDatabase>>> Deployment::Materialize(
    const Database& db) const {
  std::vector<std::unique_ptr<PartitionedDatabase>> out;
  for (const auto& config : configs_) {
    PREF_ASSIGN_OR_RAISE(auto pdb, PartitionDatabase(db, config));
    out.push_back(std::move(pdb));
  }
  return out;
}

Result<double> Deployment::Redundancy(const Database& db) const {
  PREF_ASSIGN_OR_RAISE(auto pdbs, Materialize(db));
  // Count each distinct (table, scheme) once.
  struct Placed {
    TableId table;
    const PartitionSpec* spec;
    size_t rows;
  };
  std::vector<Placed> placed;
  size_t total_partitioned = 0;
  size_t total_original = 0;
  std::vector<bool> seen_table(static_cast<size_t>(db.num_tables()), false);
  for (size_t i = 0; i < configs_.size(); ++i) {
    for (const auto& [table_id, spec] : configs_[i].specs()) {
      bool duplicate = false;
      for (const auto& p : placed) {
        if (p.table == table_id && SpecsEquivalent(*p.spec, spec)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const PartitionedTable* pt = pdbs[i]->GetTable(table_id);
      placed.push_back({table_id, &spec, pt->TotalRows()});
      total_partitioned += pt->TotalRows();
      if (!seen_table[static_cast<size_t>(table_id)]) {
        seen_table[static_cast<size_t>(table_id)] = true;
        total_original += db.table(table_id).num_rows();
      }
    }
  }
  if (total_original == 0) return 0.0;
  return static_cast<double>(total_partitioned) /
             static_cast<double>(total_original) - 1.0;
}

double Deployment::Locality(const Database& db) const {
  double covered = 0, total = 0;
  for (const auto& config : configs_) {
    for (const auto& e : SchemaEdges(db, config)) {
      total += e.weight;
      if (EdgeIsLocal(config, e.predicate)) covered += e.weight;
    }
  }
  return total == 0 ? 0.0 : covered / total;
}

const PartitioningConfig* Deployment::RouteQuery(
    const std::vector<TableId>& tables) const {
  const PartitioningConfig* best = nullptr;
  for (const auto& config : configs_) {
    bool all = std::all_of(tables.begin(), tables.end(),
                           [&](TableId t) { return config.Contains(t); });
    if (all && best == nullptr) best = &config;
  }
  return best;
}

}  // namespace pref
