#include "partition/config.h"

#include <functional>
#include <sstream>

namespace pref {

Status PartitioningConfig::AddSpec(const std::string& table, PartitionSpec spec) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(table));
  if (specs_.count(id)) {
    return Status::AlreadyExists("table '", table, "' already has a spec");
  }
  specs_[id] = std::move(spec);
  finalized_ = false;
  return Status::OK();
}

Status PartitioningConfig::AddHash(const std::string& table,
                                   const std::vector<std::string>& columns) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(table));
  if (columns.empty()) return Status::Invalid("hash partitioning needs columns");
  std::vector<ColumnId> cols;
  for (const auto& c : columns) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, schema_->table(id).FindColumn(c));
    cols.push_back(cid);
  }
  return AddSpec(table, PartitionSpec::Hash(std::move(cols), num_partitions_));
}

Status PartitioningConfig::AddHashOnPrimaryKey(const std::string& table) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(table));
  const TableDef& def = schema_->table(id);
  if (def.primary_key.empty()) {
    return Status::Invalid("table '", table, "' has no primary key");
  }
  return AddSpec(table, PartitionSpec::Hash(def.primary_key, num_partitions_));
}

Status PartitioningConfig::AddRange(const std::string& table,
                                    const std::string& column,
                                    std::vector<Value> bounds) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(table));
  PREF_ASSIGN_OR_RAISE(ColumnId cid, schema_->table(id).FindColumn(column));
  if (static_cast<int>(bounds.size()) != num_partitions_ - 1) {
    return Status::Invalid("range partitioning of '", table, "' needs exactly ",
                           num_partitions_ - 1, " bounds, got ", bounds.size());
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      return Status::Invalid("range bounds for '", table,
                             "' must be strictly ascending");
    }
  }
  return AddSpec(table, PartitionSpec::Range(cid, std::move(bounds),
                                             num_partitions_));
}

Status PartitioningConfig::AddReplicated(const std::string& table) {
  return AddSpec(table, PartitionSpec::Replicated(num_partitions_));
}

Status PartitioningConfig::AddRoundRobin(const std::string& table) {
  return AddSpec(table, PartitionSpec::RoundRobin(num_partitions_));
}

Status PartitioningConfig::AddPref(const std::string& table,
                                   const std::vector<std::string>& columns,
                                   const std::string& referenced,
                                   const std::vector<std::string>& ref_columns) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(table));
  PREF_ASSIGN_OR_RAISE(TableId ref_id, schema_->FindTable(referenced));
  if (id == ref_id) {
    return Status::Invalid("table '", table, "' cannot PREF-reference itself");
  }
  PREF_ASSIGN_OR_RAISE(
      JoinPredicate p, schema_->MakePredicate(table, columns, referenced, ref_columns));
  PartitionSpec spec;
  spec.method = PartitionMethod::kPref;
  spec.attributes = p.left_columns;
  spec.num_partitions = num_partitions_;
  spec.referenced_table = ref_id;
  spec.predicate = p;
  return AddSpec(table, std::move(spec));
}

Status PartitioningConfig::AddRefByForeignKey(const std::string& fk_name) {
  for (const auto& fk : schema_->foreign_keys()) {
    if (fk.name != fk_name) continue;
    const TableDef& src = schema_->table(fk.src_table);
    const TableDef& dst = schema_->table(fk.dst_table);
    std::vector<std::string> src_cols, dst_cols;
    for (ColumnId c : fk.src_columns) src_cols.push_back(src.column(c).name);
    for (ColumnId c : fk.dst_columns) dst_cols.push_back(dst.column(c).name);
    return AddPref(src.name, src_cols, dst.name, dst_cols);
  }
  return Status::NotFound("foreign key '", fk_name, "' not in schema");
}

Status PartitioningConfig::Finalize() {
  load_order_.clear();
  // Check PREF targets exist and partition counts agree.
  for (const auto& [id, spec] : specs_) {
    if (spec.num_partitions != num_partitions_ &&
        spec.method != PartitionMethod::kReplicated) {
      return Status::Invalid("table '", schema_->table(id).name,
                             "' has inconsistent partition count");
    }
    if (spec.method == PartitionMethod::kPref) {
      auto it = specs_.find(spec.referenced_table);
      if (it == specs_.end()) {
        return Status::Invalid("PREF table '", schema_->table(id).name,
                               "' references unpartitioned table '",
                               schema_->table(spec.referenced_table).name, "'");
      }
    }
  }
  // Topological sort over PREF edges; also detects cycles.
  std::map<TableId, int> state;  // 0 = unvisited, 1 = visiting, 2 = done
  Status cycle_error;
  std::function<Status(TableId)> visit = [&](TableId id) -> Status {
    int& st = state[id];
    if (st == 2) return Status::OK();
    if (st == 1) {
      return Status::Invalid("PREF reference cycle through table '",
                             schema_->table(id).name, "'");
    }
    st = 1;
    const PartitionSpec& spec = specs_.at(id);
    if (spec.method == PartitionMethod::kPref) {
      PREF_RETURN_NOT_OK(visit(spec.referenced_table));
    }
    st = 2;
    load_order_.push_back(id);
    return Status::OK();
  };
  for (const auto& [id, spec] : specs_) {
    PREF_RETURN_NOT_OK(visit(id));
  }
  // Resolve seed tables (Definition 1): walk the referenced chain to the
  // first non-PREF table.
  for (TableId id : load_order_) {
    PartitionSpec& spec = specs_.at(id);
    if (spec.method != PartitionMethod::kPref) continue;
    const PartitionSpec& ref_spec = specs_.at(spec.referenced_table);
    if (ref_spec.method == PartitionMethod::kPref) {
      spec.seed_table = ref_spec.seed_table;
      spec.seed_attributes = ref_spec.seed_attributes;
    } else {
      spec.seed_table = spec.referenced_table;
      spec.seed_attributes = ref_spec.attributes;
    }
  }
  finalized_ = true;
  return Status::OK();
}

std::string PartitioningConfig::ToString() const {
  std::ostringstream ss;
  for (const auto& [id, spec] : specs_) {
    ss << schema_->table(id).name << ": " << spec.ToString(*schema_, id);
    if (spec.method == PartitionMethod::kPref && spec.seed_table != kInvalidTableId) {
      ss << " (seed: " << schema_->table(spec.seed_table).name << ")";
    }
    ss << "\n";
  }
  return ss.str();
}

}  // namespace pref
