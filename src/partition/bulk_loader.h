// Bulk loading of new tuples into an already-partitioned database (§2.3).
//
// PREF tables route each new tuple via the partition index on the
// referenced table's predicate columns, avoiding a join against the
// referenced table. The loader also maintains the dup/hasS bitmaps and all
// partition indexes registered on the loaded table (so later PREF loads
// that reference it stay correct).
//
// The load runs the shared three-phase pipeline of
// partition/load_phases.h (route → per-partition append → per-index
// maintenance) — the same phases the initial PartitionDatabase pass uses —
// so the hot path runs on the bounded ThreadPool while staying
// bit-identical to a serial load. See load_phases.h for the ownership and
// determinism model; this class adds the per-phase timers, trace spans,
// and load.* registry counters.

#pragma once

#include "partition/config.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

struct BulkLoadStats {
  size_t rows_inserted = 0;   // input tuples
  size_t copies_written = 0;  // physical copies (>= rows_inserted for PREF)
  size_t index_lookups = 0;   // partition-index probes
  size_t scan_probes = 0;     // rows scanned by the naive (no-index) path
  // Wall-clock per load phase (route / append / index maintenance), captured
  // by ScopedTimer. route + append + index <= total load wall time.
  double route_seconds = 0;
  double append_seconds = 0;
  double index_seconds = 0;
};

class BulkLoader {
 public:
  /// \param use_partition_index when false, PREF routing falls back to
  /// scanning the referenced table's partitions (the Fig-10 ablation
  /// measuring what the partition index buys).
  /// \param parallel when false, every phase runs on the calling thread
  /// (the serial baseline of bench_fig10_bulk_loading). Results are
  /// identical either way.
  explicit BulkLoader(bool use_partition_index = true, bool parallel = true)
      : use_partition_index_(use_partition_index), parallel_(parallel) {}

  /// Appends `new_rows` (same column layout as the table) to table `id`
  /// of `pdb`. The referenced table of a PREF spec must already be loaded.
  Result<BulkLoadStats> Append(PartitionedDatabase* pdb, TableId id,
                               const RowBlock& new_rows);

 private:
  bool use_partition_index_;
  bool parallel_;
};

}  // namespace pref
