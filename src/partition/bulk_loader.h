// Bulk loading of new tuples into an already-partitioned database (§2.3).
//
// PREF tables route each new tuple via the partition index on the
// referenced table's predicate columns, avoiding a join against the
// referenced table. The loader also maintains the dup/hasS bitmaps and all
// partition indexes registered on the loaded table (so later PREF loads
// that reference it stay correct).

#pragma once

#include "partition/config.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

struct BulkLoadStats {
  size_t rows_inserted = 0;   // input tuples
  size_t copies_written = 0;  // physical copies (>= rows_inserted for PREF)
  size_t index_lookups = 0;   // partition-index probes
  size_t scan_probes = 0;     // rows scanned by the naive (no-index) path
};

class BulkLoader {
 public:
  /// \param use_partition_index when false, PREF routing falls back to
  /// scanning the referenced table's partitions (the Fig-10 ablation
  /// measuring what the partition index buys).
  explicit BulkLoader(bool use_partition_index = true)
      : use_partition_index_(use_partition_index) {}

  /// Appends `new_rows` (same column layout as the table) to table `id`
  /// of `pdb`. The referenced table of a PREF spec must already be loaded.
  Result<BulkLoadStats> Append(PartitionedDatabase* pdb, TableId id,
                               const RowBlock& new_rows);

 private:
  bool use_partition_index_;
};

}  // namespace pref
