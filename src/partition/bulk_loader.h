// Bulk loading of new tuples into an already-partitioned database (§2.3).
//
// PREF tables route each new tuple via the partition index on the
// referenced table's predicate columns, avoiding a join against the
// referenced table. The loader also maintains the dup/hasS bitmaps and all
// partition indexes registered on the loaded table (so later PREF loads
// that reference it stay correct).
//
// The load is organized as three phases so the hot path can run on the
// bounded ThreadPool while staying bit-identical to a serial load:
//   1. Route  — compute the ordered partition list of every input row.
//      Read-only against the database; parallel over row chunks with
//      per-chunk probe/lookup counters (no shared counters).
//   2. Append — materialize the copies. Parallel over *target partitions*:
//      each task exclusively owns one partition's RowBlock and dup/hasS
//      bitmaps, so the data path takes no locks.
//   3. Index  — maintain this table's registered partition indexes.
//      Parallel over indexes: each task exclusively owns one index.
// Determinism: phase 1 produces the same placements the serial loop would
// (round-robin assignment of orphans is replayed sequentially in row
// order), and phases 2/3 insert in row order within each owned structure,
// so partitions, bitmaps, and indexes come out identical either way.

#pragma once

#include "partition/config.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

struct BulkLoadStats {
  size_t rows_inserted = 0;   // input tuples
  size_t copies_written = 0;  // physical copies (>= rows_inserted for PREF)
  size_t index_lookups = 0;   // partition-index probes
  size_t scan_probes = 0;     // rows scanned by the naive (no-index) path
  // Wall-clock per load phase (route / append / index maintenance), captured
  // by ScopedTimer. route + append + index <= total load wall time.
  double route_seconds = 0;
  double append_seconds = 0;
  double index_seconds = 0;
};

class BulkLoader {
 public:
  /// \param use_partition_index when false, PREF routing falls back to
  /// scanning the referenced table's partitions (the Fig-10 ablation
  /// measuring what the partition index buys).
  /// \param parallel when false, every phase runs on the calling thread
  /// (the serial baseline of bench_fig10_bulk_loading). Results are
  /// identical either way.
  explicit BulkLoader(bool use_partition_index = true, bool parallel = true)
      : use_partition_index_(use_partition_index), parallel_(parallel) {}

  /// Appends `new_rows` (same column layout as the table) to table `id`
  /// of `pdb`. The referenced table of a PREF spec must already be loaded.
  Result<BulkLoadStats> Append(PartitionedDatabase* pdb, TableId id,
                               const RowBlock& new_rows);

 private:
  bool use_partition_index_;
  bool parallel_;
};

}  // namespace pref
