// Deployment: a set of partitioning configurations materialized side by
// side. The workload-driven design (§4) produces one configuration per
// merged MAST, and a table appearing in several MASTs under *different*
// schemes is physically duplicated while identical schemes are shared
// (§4.3). The "CP individual stars" TPC-DS baseline (§5.3) has the same
// shape. DR for a deployment counts each distinct (table, scheme) pair
// once, matching the paper's union semantics.

#pragma once

#include <memory>
#include <vector>

#include "partition/config.h"
#include "partition/locality.h"
#include "partition/partitioner.h"

namespace pref {

/// True if two specs partition identically (method, attributes, partition
/// count and — for PREF — referenced table and predicate).
bool SpecsEquivalent(const PartitionSpec& a, const PartitionSpec& b);

class Deployment {
 public:
  void AddConfig(PartitioningConfig config) {
    configs_.push_back(std::move(config));
  }

  std::vector<PartitioningConfig>& configs() { return configs_; }
  const std::vector<PartitioningConfig>& configs() const { return configs_; }

  /// Materializes every configuration against `db`.
  Result<std::vector<std::unique_ptr<PartitionedDatabase>>> Materialize(
      const Database& db) const;

  /// DR over the union of all configurations: each (table, scheme) pair is
  /// stored once; a table under k distinct schemes is stored k times.
  Result<double> Redundancy(const Database& db) const;

  /// Weighted DL across configurations (each configuration contributes the
  /// FK edges among its tables).
  double Locality(const Database& db) const;

  /// The configuration a query touching exactly `tables` routes to: the
  /// first configuration containing all of them (queries are routed to the
  /// merged MAST that contains them). Null if none qualifies.
  const PartitioningConfig* RouteQuery(const std::vector<TableId>& tables) const;

 private:
  std::vector<PartitioningConfig> configs_;
};

}  // namespace pref
