// Deployment: a set of partitioning configurations materialized side by
// side. The workload-driven design (§4) produces one configuration per
// merged MAST, and a table appearing in several MASTs under *different*
// schemes is physically duplicated while identical schemes are shared
// (§4.3). The "CP individual stars" TPC-DS baseline (§5.3) has the same
// shape. DR for a deployment counts each distinct (table, scheme) pair
// once, matching the paper's union semantics.
//
// ServingDatabase is the live-serving counterpart (DESIGN.md §12): one
// *current* immutable PartitionedDatabase version plus an atomic publish
// point. Queries pin a version for their whole run; an online migration
// publishes successor versions underneath them without blocking anyone.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "partition/config.h"
#include "partition/locality.h"
#include "partition/partitioner.h"

namespace pref {

/// True if two specs partition identically (method, attributes, partition
/// count and — for PREF — referenced table and predicate).
bool SpecsEquivalent(const PartitionSpec& a, const PartitionSpec& b);

class Deployment {
 public:
  void AddConfig(PartitioningConfig config) {
    configs_.push_back(std::move(config));
  }

  std::vector<PartitioningConfig>& configs() { return configs_; }
  const std::vector<PartitioningConfig>& configs() const { return configs_; }

  /// Materializes every configuration against `db`.
  Result<std::vector<std::unique_ptr<PartitionedDatabase>>> Materialize(
      const Database& db) const;

  /// DR over the union of all configurations: each (table, scheme) pair is
  /// stored once; a table under k distinct schemes is stored k times.
  Result<double> Redundancy(const Database& db) const;

  /// Weighted DL across configurations (each configuration contributes the
  /// FK edges among its tables).
  double Locality(const Database& db) const;

  /// The configuration a query touching exactly `tables` routes to: the
  /// first configuration containing all of them (queries are routed to the
  /// merged MAST that contains them). Null if none qualifies.
  const PartitioningConfig* RouteQuery(const std::vector<TableId>& tables) const;

 private:
  std::vector<PartitioningConfig> configs_;
};

/// \brief Multi-version serving handle over a live partitioned database.
///
/// Holds the *current* version (an immutable PartitionedDatabase) behind a
/// short critical section. Queries call Acquire() once at execution start
/// and run their entire plan against that snapshot — a version stays alive
/// (shared_ptr) until its last in-flight query drains, so a migration's
/// Publish() never invalidates running queries. Publish() is the swap
/// barrier of DESIGN.md §12: a pointer swap under the mutex, after which
/// new queries route to the new version.
///
/// Thread safety: all methods are thread-safe; the critical sections are a
/// pointer copy/swap (no data-path work under the lock).
class ServingDatabase {
 public:
  /// One pinned version: the database plus its publish sequence number
  /// (1 = the initially served version).
  struct Snapshot {
    std::shared_ptr<const PartitionedDatabase> pdb;
    uint64_t version = 0;
  };

  explicit ServingDatabase(std::shared_ptr<const PartitionedDatabase> initial)
      : current_(std::move(initial)) {}

  /// Pins the current version. The returned snapshot keeps the version's
  /// storage alive for as long as the caller holds it.
  Snapshot Acquire() const {
    MutexLock lock(&mu_);
    return Snapshot{current_, version_};
  }

  /// Atomically replaces the served version; returns the new version
  /// number. Queries already running keep their pinned snapshot.
  uint64_t Publish(std::shared_ptr<const PartitionedDatabase> next) {
    MutexLock lock(&mu_);
    current_ = std::move(next);
    return ++version_;
  }

  /// The sequence number of the currently served version.
  uint64_t version() const {
    MutexLock lock(&mu_);
    return version_;
  }

  /// Capability accessor for lock-ordering annotations (the Clang
  /// "private mutex" pattern — see common/mutex.h): lets
  /// MigrationExecutor declare its mutex ACQUIRED_BEFORE this one without
  /// the mutex going public. Never used to lock.
  Mutex* serving_mu() const RETURN_CAPABILITY(mu_) { return &mu_; }

 private:
  /// Leaf in the global lock order (common/mutex.h): only pointer
  /// copy/swap happens under it, never a call into another subsystem.
  mutable Mutex mu_;
  std::shared_ptr<const PartitionedDatabase> current_ GUARDED_BY(mu_);
  uint64_t version_ GUARDED_BY(mu_) = 1;
};

}  // namespace pref
