// Data-locality (DL, §3.2) and data-redundancy (DR, §3.3) metrics for a
// partitioning configuration over a weighted join-edge set.

#pragma once

#include <vector>

#include "partition/config.h"
#include "storage/table.h"

namespace pref {

/// \brief One edge of a schema graph G_S: an equi-join predicate weighted by
/// the network cost of executing it remotely (the size of the smaller of
/// the two tables, per §3.1).
struct WeightedEdge {
  JoinPredicate predicate;
  double weight = 0;
};

/// Builds the schema-driven edge set: one edge per referential constraint,
/// weighted by min(|src|, |dst|) from the actual table cardinalities.
std::vector<WeightedEdge> SchemaEdges(const Database& db);

/// Builds the same edge set over a schema subset (tables without a spec in
/// `config` are skipped).
std::vector<WeightedEdge> SchemaEdges(const Database& db,
                                      const PartitioningConfig& config);

/// \brief Whether a join over `edge` executes without network transfer
/// under `config`:
///  * either side replicated, or
///  * one side PREF-partitioned by the other with an equivalent predicate, or
///  * both sides hash-partitioned on exactly the predicate columns with the
///    same partition count.
bool EdgeIsLocal(const PartitioningConfig& config, const JoinPredicate& edge);

struct LocalityReport {
  double data_locality = 0;    // DL in [0, 1]
  double data_redundancy = 0;  // DR >= 0
  double covered_weight = 0;
  double total_weight = 0;
};

/// Computes DL over `edges` and DR over the materialized `pdb`.
LocalityReport EvaluateConfig(const PartitioningConfig& config,
                              const std::vector<WeightedEdge>& edges,
                              const PartitionedDatabase& pdb);

/// DL only (no materialized database needed).
double DataLocality(const PartitioningConfig& config,
                    const std::vector<WeightedEdge>& edges);

}  // namespace pref
